"""Observability end to end: instrumentation is faithful and harmless.

Three contracts:

* **worker telemetry survives the pool** — artifact hit/miss counters
  and per-spec latencies recorded inside pool workers aggregate into
  the parent registry (the bug class this module was built to kill:
  ``repro cache artifacts`` silently under-reporting for parallel runs);
* **spans actually cover the work** — a traced run's stage spans sum to
  (almost all of) their compile span, and the trace file is loadable;
* **instrumentation never changes results** — records serialize
  byte-identically with metrics+tracing fully on vs fully off.
"""

import json
import warnings

import pytest

from repro.api.artifacts import MemoryArtifactStore, artifact_stats
from repro.api.cli import main
from repro.api.core import execute_spec
from repro.api.runner import Runner
from repro.api.spec import Plan, RunSpec
from repro.api.store import MemoryStore
from repro.obs import metrics, trace

PLAN = Plan.grid(benchmarks=["gsmdec"],
                 variants=["mdc/prefclus", "mdc/mincoms"],
                 scale=0.05)


def _canonical(record) -> str:
    return json.dumps(record.to_dict(), sort_keys=True)


class TestWorkerTelemetry:
    def test_parallel_run_aggregates_worker_metrics(self):
        with metrics.capture() as reg:
            runner = Runner(store=MemoryStore(),
                            artifacts=MemoryArtifactStore(), parallel=2)
            records = runner.run(PLAN)
            assert len(records) == 2

            # The artifact lookups happened inside pool workers; their
            # deltas must be visible here, in the parent process.
            lookups = sum(v for _, v in
                          reg.counter_items("artifacts.lookups"))
            assert lookups > 0
            # Hit/miss split depends on how warm the persistent pool's
            # worker-side stores are; what must hold is that the
            # lookups were counted at all.
            assert artifact_stats().lookups > 0
            assert reg.counter("runner.tasks") == 2
            hist = reg.histogram("runner.spec_seconds", mode="parallel")
            assert hist is not None and hist.count == 2
            assert reg.counter("runner.worker_busy_seconds") > 0
            util = reg.gauge("runner.worker_utilization")
            assert util is not None and 0.0 < util <= 1.0
            # Simulator counters cross the pool boundary too.
            assert reg.counter("sim.runs", engine="events") > 0

    def test_serial_run_records_the_same_counter_families(self):
        with metrics.capture() as reg:
            runner = Runner(store=MemoryStore(),
                            artifacts=MemoryArtifactStore(), parallel=None)
            runner.run(PLAN)
            assert reg.counter("runner.store_lookups", outcome="miss") == 2
            hist = reg.histogram("runner.spec_seconds", mode="serial")
            assert hist is not None and hist.count == 2
            assert sum(v for _, v in
                       reg.counter_items("stages.executed")) > 0


class TestSpanCoverage:
    def test_stage_spans_cover_their_compile_span(self):
        tracer = trace.Tracer()
        previous = trace.set_tracer(tracer)
        try:
            with metrics.capture():
                Runner(store=MemoryStore(),
                       artifacts=MemoryArtifactStore()).run(PLAN)
        finally:
            trace.set_tracer(previous)
        events = tracer.events()
        compiles = [e for e in events if e["cat"] == "compile"]
        assert compiles, "no compile spans recorded"
        for compile_span in compiles:
            # Parents are recorded by name, and the same loop compiles
            # once per variant — disambiguate instances by containment.
            begin = compile_span["ts_us"]
            end = begin + compile_span["dur_us"]
            children = [
                e for e in events
                if e.get("parent") == compile_span["name"]
                and e["cat"] in ("stage", "artifact", "glue")
                and e["tid"] == compile_span["tid"]
                and begin <= e["ts_us"] <= end
            ]
            assert children, f"no children under {compile_span['name']}"
            covered = sum(e["dur_us"] for e in children)
            # The staged pipeline IS the compile: its children account
            # for nearly all of the parent span, and can never exceed
            # it by more than measurement jitter.
            assert covered <= compile_span["dur_us"] * 1.02
            assert covered >= compile_span["dur_us"] * 0.85, (
                f"{compile_span['name']}: stage spans cover only "
                f"{covered / compile_span['dur_us']:.0%}"
            )
        # Every spec span contains compile and simulate work.
        specs = [e for e in events if e["cat"] == "spec"]
        assert len(specs) == 2
        cats = {e["cat"] for e in events}
        assert {"spec", "compile", "stage", "sim", "artifact"} <= cats


class TestGoldenEquivalence:
    def test_instrumentation_never_changes_results(self):
        spec = RunSpec(benchmark="gsmdec", variant="mdc/prefclus",
                       scale=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            # Fully dark: metrics disabled, no tracer.
            with metrics.capture(enabled=False):
                previous = trace.set_tracer(None)
                try:
                    dark = execute_spec(
                        spec, artifacts=MemoryArtifactStore())
                finally:
                    trace.set_tracer(previous)
            # Fully lit: fresh registry recording, tracer installed.
            with metrics.capture():
                previous = trace.set_tracer(trace.Tracer())
                try:
                    lit = execute_spec(
                        spec, artifacts=MemoryArtifactStore())
                finally:
                    trace.set_tracer(previous)
        assert _canonical(dark) == _canonical(lit)

    def test_parallel_records_identical_with_and_without_metrics(self):
        with metrics.capture(enabled=False):
            dark = Runner(store=MemoryStore(),
                          artifacts=MemoryArtifactStore(),
                          parallel=2).run(PLAN)
        with metrics.capture():
            lit = Runner(store=MemoryStore(),
                         artifacts=MemoryArtifactStore(),
                         parallel=2).run(PLAN)
        assert ([_canonical(r) for r in dark]
                == [_canonical(r) for r in lit])


class TestCliObservability:
    def test_traced_run_is_loadable_and_covers_the_wall(self, tmp_path,
                                                        capsys):
        trace_path = tmp_path / "out.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.05",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "trace:" in err and "metrics snapshot" in err

        # Perfetto-loadable: valid chrome trace-event JSON.
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]

        events = trace.load_events(str(trace_path))
        roots = [e for e in events if e["name"] == "repro.run"]
        assert len(roots) == 1
        spec_spans = [e for e in events if e["cat"] == "spec"]
        covered = sum(e["dur_us"] for e in spec_spans)
        # The cold spec execution dominates the command; everything
        # else (arg parsing, table rendering, store writes) is noise.
        assert covered <= roots[0]["dur_us"] * 1.02
        assert covered >= roots[0]["dur_us"] * 0.5

        snapshot = metrics.load_snapshot(str(metrics_path))
        assert sum(v for _, v in
                   snapshot.counter_items("stages.executed")) > 0
        assert snapshot.counter("sim.runs", engine="events") > 0

    def test_progress_is_plain_lines_off_a_tty(self, tmp_path, capsys):
        # pytest's captured stderr is not a tty, so the plain-line
        # printer is active: newline-terminated lines, no \r rewriting.
        rc = main([
            "run", "gsmdec", "-v", "mdc/prefclus", "-v", "mdc/mincoms",
            "--scale", "0.05", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "\r" not in err
        assert "[2/2]" in err

    @pytest.mark.parametrize("suffix,kind", [
        ("json", "trace"), ("jsonl", "trace"),
    ])
    def test_obs_trace_summarizes_both_formats(self, tmp_path, capsys,
                                               suffix, kind):
        path = tmp_path / f"t.{suffix}"
        main(["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.05",
              "--cache-dir", str(tmp_path / "cache"),
              "--trace", str(path)])
        capsys.readouterr()
        assert main(["obs", kind, str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out and "by category:" in out

    def test_obs_metrics_renders_a_snapshot(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        main(["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.05",
              "--cache-dir", str(tmp_path / "cache"),
              "--metrics", str(path)])
        capsys.readouterr()
        assert main(["obs", "metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stages.executed" in out
        assert "sim.runs{engine=events}" in out
