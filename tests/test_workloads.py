"""Workload tests: kernels, traces, the calibrated catalog, specialization."""

import pytest

from repro.analysis import chain_stats, cmr_car
from repro.arch import BASELINE_CONFIG
from repro.errors import WorkloadError
from repro.experiments import paperdata
from repro.workloads import (
    BENCHMARKS,
    benchmark_names,
    chain_kernel,
    copy_kernel,
    get_benchmark,
    inplace_stencil_kernel,
    reduction_kernel,
    specialize_ambiguous,
    streaming_kernel,
    table_update_kernel,
    trace_factory,
)
from repro.workloads.kernels import table_lookup_kernel
from repro.workloads.traces import AddressTrace


class TestKernels:
    def test_streaming_is_chain_free(self):
        ddg = streaming_kernel(n_loads=3, n_stores=2, taps=2)
        assert chain_stats(ddg).biggest_chain == 0

    def test_streaming_tap_count(self):
        ddg = streaming_kernel(n_loads=2, taps=3)
        assert len(ddg.loads()) == 6

    def test_copy_kernel_shape(self):
        ddg = copy_kernel(width=2)
        assert len(ddg.loads()) == 1 and len(ddg.stores()) == 1

    def test_reduction_has_recurrence(self):
        ddg = reduction_kernel()
        acc = next(v for v in ddg if v.name == "acc")
        assert any(e.src == acc.iid and e.distance == 1
                   for e in ddg.preds(acc.iid))

    def test_table_lookup_is_loads_only(self):
        ddg = table_lookup_kernel()
        assert not ddg.stores()
        assert chain_stats(ddg).biggest_chain == 0

    def test_stencil_chain_size(self):
        ddg = inplace_stencil_kernel(taps=3)
        assert chain_stats(ddg).biggest_chain == 4  # 3 loads + 1 store

    def test_table_update_chains_load_and_store(self):
        ddg = table_update_kernel()
        assert chain_stats(ddg).biggest_chain == 2

    def test_chain_kernel_glues_ladders(self):
        ddg = chain_kernel(ladders=(4, 3, 2))
        assert chain_stats(ddg).biggest_chain == 9

    def test_chain_kernel_ladder_sum_checked(self):
        with pytest.raises(WorkloadError):
            chain_kernel(ladders=())

    def test_chain_kernel_specializes_to_biggest_ladder(self):
        ddg = chain_kernel(ladders=(6, 3))
        aggressive = specialize_ambiguous(ddg)
        assert chain_stats(aggressive, with_mem_deps=True).biggest_chain == 6

    def test_rotating_ladder_spans_two_homes(self):
        ddg = chain_kernel(ladders=(1, 4), rotating=(1,), lane_stride=16)
        rotated = [v for v in ddg.memory_instructions()
                   if v.mem.stride == 8]
        assert len(rotated) == 4


class TestTraces:
    def test_deterministic(self, stream_loop):
        t1 = trace_factory(32, seed=9)(stream_loop)
        t2 = trace_factory(32, seed=9)(stream_loop)
        load = stream_loop.loads()[0]
        assert all(
            t1.address(load.iid, i) == t2.address(load.iid, i)
            for i in range(32)
        )

    def test_affine_addresses_follow_stride(self, stream_loop):
        trace = trace_factory(8, seed=1)(stream_loop)
        load = stream_loop.loads()[0]
        addrs = [trace.address(load.iid, i) for i in range(8)]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {load.mem.stride}

    def test_spaces_do_not_overlap(self, stream_loop):
        trace = trace_factory(4, seed=1)(stream_loop)
        bases = {trace.base(s) for s in ("A", "B", "C")}
        assert len(bases) == 3
        assert max(bases) - min(bases) >= 1 << 22

    def test_bases_cluster_aligned(self, stream_loop):
        trace = trace_factory(4, seed=1)(stream_loop)
        lane = BASELINE_CONFIG.num_clusters * BASELINE_CONFIG.interleave_bytes
        for space in ("A", "B", "C"):
            assert trace.base(space) % lane == 0

    def test_indirect_stays_in_window_and_aligned(self):
        from repro.alias import AccessPattern, MemRef
        from repro.ir import DdgBuilder

        b = DdgBuilder()
        b.load("x", mem=MemRef("T", width=4, pattern=AccessPattern.INDIRECT,
                               spread=256), name="lut")
        ddg = b.build()
        trace = trace_factory(200, seed=3)(ddg)
        load = ddg.loads()[0]
        base = trace.base("T")
        for i in range(200):
            addr = trace.address(load.iid, i)
            assert base <= addr < base + 256
            assert addr % 4 == 0

    def test_non_memory_instruction_raises(self, stream_loop):
        trace = trace_factory(4, seed=1)(stream_loop)
        alu = next(v for v in stream_loop if not v.is_memory)
        with pytest.raises(WorkloadError):
            trace.address(alu.iid, 0)

    def test_explicit_bases(self, stream_loop):
        trace = AddressTrace(stream_loop, 4, base_of={"A": 0, "B": 64, "C": 128})
        assert trace.base("A") == 0


class TestCatalog:
    def test_all_table1_rows_present(self):
        assert len(BENCHMARKS) == 14
        everything = benchmark_names(evaluated_only=False)
        assert set(BENCHMARKS) <= set(everything)
        # Beyond Table 1, the full listing carries one canonical synthetic
        # scenario per generator family (see repro.scenarios).
        extras = set(everything) - set(BENCHMARKS)
        assert extras and all(n.startswith("scn-") for n in extras)
        assert len(benchmark_names()) == 13  # epicenc not in the figures

    @pytest.mark.parametrize("name", [n for n in BENCHMARKS if n != "epicenc"])
    def test_calibration_matches_table3(self, name):
        bench = get_benchmark(name)
        paper_cmr, paper_car = paperdata.TABLE3[name]
        cmr, car = cmr_car(bench.chain_table())
        assert cmr == pytest.approx(paper_cmr, abs=0.02)
        assert car == pytest.approx(paper_car, abs=0.02)

    def test_interleave_factors_follow_table1(self):
        two_byte = {"g721dec", "g721enc", "gsmdec", "gsmenc",
                    "pegwitdec", "pegwitenc"}
        for name in BENCHMARKS:
            bench = get_benchmark(name)
            expected = 2 if name in two_byte else 4
            assert bench.interleave_bytes == expected

    def test_epicdec_has_the_76_op_chain(self):
        bench = get_benchmark("epicdec")
        chain_loop = bench.loops[0]
        assert chain_stats(chain_loop.ddg).biggest_chain == 76

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("doom")

    def test_machine_applies_interleave(self):
        bench = get_benchmark("gsmdec")
        assert bench.machine(BASELINE_CONFIG).interleave_bytes == 2

    def test_profile_and_execute_seeds_differ(self):
        for name in BENCHMARKS:
            bench = get_benchmark(name)
            assert bench.profile_seed != bench.execute_seed


class TestSpecialization:
    @pytest.mark.parametrize("name", ["epicdec", "pgpdec", "rasta"])
    def test_table5_new_ratios(self, name):
        bench = get_benchmark(name)
        _, _, paper_new_cmr, paper_new_car = paperdata.TABLE5[name]
        new_table = []
        for spec in bench.loops:
            aggressive = specialize_ambiguous(spec.ddg)
            new_table.append(
                (chain_stats(aggressive, with_mem_deps=True), spec.iterations)
            )
        new_cmr, new_car = cmr_car(new_table)
        assert new_cmr == pytest.approx(paper_new_cmr, abs=0.05)
        assert new_car == pytest.approx(paper_new_car, abs=0.05)

    def test_specialization_clears_ambiguity(self):
        bench = get_benchmark("epicdec")
        aggressive = specialize_ambiguous(bench.loops[0].ddg)
        assert all(
            not v.mem.ambiguous for v in aggressive.memory_instructions()
        )

    def test_original_untouched(self):
        bench = get_benchmark("epicdec")
        ddg = bench.loops[0].ddg
        before = len(ddg.edges())
        specialize_ambiguous(ddg)
        assert len(ddg.edges()) == before
