"""Streaming execution core: stream/run equivalence, the checkpoint
journal and resume, structured error records, pool lifecycle, and the
sharded store's index machinery."""

import json
import os
import time

import pytest

import repro.api.core as core
from repro.api.journal import RunJournal, journal_root
from repro.api.records import RunRecord
from repro.api.runner import RunError, Runner
from repro.api.spec import Plan, RunSpec
from repro.api.store import DiskStore, JsonFileStore, MemoryStore
from repro.errors import ConfigError, ExecutionError, WorkloadError

SCALE = 0.1
PLAN = Plan.grid(
    benchmarks=["gsmdec", "gsmenc"],
    variants=("mdc/prefclus", "ddgt/prefclus"),
    scale=SCALE,
)


def record_keys(items):
    return sorted(item.spec_key for item in items)


class TestStreamEqualsRun:
    def test_stream_yields_the_same_record_set_serial(self):
        run_records = Runner(store=MemoryStore()).run(PLAN)
        streamed = list(Runner(store=MemoryStore()).stream(PLAN))
        assert len(streamed) == len(PLAN)
        by_key = {r.spec_key: r.to_dict() for r in streamed}
        assert by_key == {r.spec_key: r.to_dict() for r in run_records}

    def test_stream_yields_the_same_record_set_parallel(self):
        run_records = Runner(store=MemoryStore()).run(PLAN)
        with Runner(store=MemoryStore(), parallel=2) as runner:
            streamed = list(runner.stream(PLAN))
        assert record_keys(streamed) == record_keys(run_records)
        by_key = {r.spec_key: r.to_dict() for r in streamed}
        assert by_key == {r.spec_key: r.to_dict() for r in run_records}

    def test_hits_stream_out_before_any_execution(self, monkeypatch):
        store = MemoryStore()
        runner = Runner(store=store)
        runner.run(Plan(PLAN.specs[:2]))
        executed = []
        original = core.execute_spec

        def counting(spec, artifacts=None):
            executed.append(spec.benchmark)
            return original(spec, artifacts=artifacts)

        monkeypatch.setattr("repro.api.runner.execute_spec", counting)
        stream = runner.stream(PLAN)
        first, second = next(stream), next(stream)
        assert not executed, "warm hits must not wait for cold specs"
        rest = list(stream)
        assert executed
        assert len([first, second] + rest) == len(PLAN)

    def test_run_progress_callback_sees_every_completion(self):
        seen = []
        Runner(store=MemoryStore()).run(
            PLAN,
            progress=lambda done, total, item: seen.append((done, total)),
        )
        assert seen == [(i + 1, len(PLAN)) for i in range(len(PLAN))]


class TestStructuredErrors:
    BAD = RunSpec(benchmark="gsmdec", scale=SCALE, loop="nope")
    GOOD = RunSpec(benchmark="gsmdec", variant="mdc/prefclus", scale=SCALE)

    def test_on_error_yield_emits_runerror_and_keeps_going(self):
        plan = Plan((self.BAD, self.GOOD))
        items = list(Runner(store=MemoryStore()).stream(
            plan, on_error="yield"
        ))
        assert len(items) == 2
        errors = [i for i in items if isinstance(i, RunError)]
        records = [i for i in items if isinstance(i, RunRecord)]
        assert len(errors) == len(records) == 1
        assert errors[0].error_type == "WorkloadError"
        assert "no loop" in errors[0].message
        assert errors[0].spec["loop"] == "nope"

    def test_on_error_raise_preserves_the_original_exception(self):
        with pytest.raises(WorkloadError):
            Runner(store=MemoryStore()).run(Plan.single(self.BAD))

    def test_parallel_worker_failure_is_contained(self):
        plan = Plan((self.GOOD, self.BAD,
                     RunSpec(benchmark="gsmenc", scale=SCALE)))
        with Runner(store=MemoryStore(), parallel=2) as runner:
            items = list(runner.stream(plan, on_error="yield"))
        errors = [i for i in items if isinstance(i, RunError)]
        records = [i for i in items if isinstance(i, RunRecord)]
        assert len(errors) == 1 and len(records) == 2
        assert errors[0].error_type == "WorkloadError"
        assert errors[0].traceback, "worker traceback must be captured"

    def test_runerror_reconstructs_repro_exception_types(self):
        err = RunError.from_dict({
            "spec": {}, "spec_key": "k",
            "error_type": "WorkloadError", "message": "boom",
        })
        assert isinstance(err.exception(), WorkloadError)
        alien = RunError.from_dict({
            "spec": {}, "spec_key": "k",
            "error_type": "KeyError", "message": "boom",
            "traceback": "tb",
        })
        exc = alien.exception()
        assert isinstance(exc, ExecutionError)
        assert "KeyError" in str(exc) and "tb" in str(exc)

    def test_runerror_roundtrips_through_dict(self):
        try:
            raise WorkloadError("nope")
        except WorkloadError as exc:
            err = RunError.from_exception(self.BAD, "key", exc)
        clone = RunError.from_dict(json.loads(json.dumps(err.to_dict())))
        assert clone.spec_key == "key"
        assert clone.error_type == "WorkloadError"
        assert "test_api_streaming" in clone.traceback


class TestJournalAndResume:
    def test_journal_records_done_events(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        runner = Runner(store=MemoryStore())
        records = runner.run(PLAN, journal=journal)
        state = RunJournal(tmp_path / "j.jsonl").load()
        assert state.plan_hash == PLAN.content_hash
        assert state.total == len(PLAN)
        assert state.done == {r.spec_key for r in records}
        assert not state.errors

    def test_killed_stream_resumes_without_reexecuting(self, tmp_path,
                                                       monkeypatch):
        store = DiskStore(tmp_path / "cache")
        journal = RunJournal(tmp_path / "j.jsonl")
        stream = Runner(store=store).stream(PLAN, journal=journal)
        next(stream), next(stream)
        stream.close()  # the "kill": two specs done, two never ran
        journal.close()
        state = RunJournal(tmp_path / "j.jsonl").load()
        assert len(state.done) == 2

        executed = []
        original = core.execute_spec

        def counting(spec, artifacts=None):
            executed.append(spec)
            return original(spec, artifacts=artifacts)

        monkeypatch.setattr("repro.api.runner.execute_spec", counting)
        resumed_journal = RunJournal(tmp_path / "j.jsonl")
        # A fresh store instance, as after a process kill + restart.
        records = Runner(store=DiskStore(tmp_path / "cache")).run(
            PLAN, journal=resumed_journal
        )
        assert len(executed) == 2, "completed work must not re-execute"
        assert [r.spec_key for r in records] == [
            s.content_hash for s in PLAN
        ]
        assert RunJournal(tmp_path / "j.jsonl").load().done == {
            s.content_hash for s in PLAN
        }

    def test_journal_for_a_different_plan_is_discarded(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        Runner(store=MemoryStore()).run(Plan(PLAN.specs[:2]),
                                        journal=journal)
        journal.close()
        other = Plan(PLAN.specs[2:])
        fresh = RunJournal(tmp_path / "j.jsonl")
        state = fresh.begin(other)
        assert state.done == set()
        assert state.plan_hash == other.content_hash

    def test_journal_errors_recorded_and_cleared_on_success(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        bad = RunSpec(benchmark="gsmdec", scale=SCALE, loop="nope")
        plan = Plan.single(bad)
        list(Runner(store=MemoryStore()).stream(
            plan, journal=journal, on_error="yield"
        ))
        journal.close()
        state = RunJournal(tmp_path / "j.jsonl").load()
        assert bad.content_hash in state.errors
        assert state.errors[bad.content_hash]["error_type"] == \
            "WorkloadError"
        # A later successful attempt supersedes the recorded failure.
        reopened = RunJournal(tmp_path / "j.jsonl")
        reopened.begin(plan)
        reopened.note_done(bad.content_hash)
        reopened.close()
        state = RunJournal(tmp_path / "j.jsonl").load()
        assert not state.errors
        assert state.done == {bad.content_hash}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.begin(PLAN)
        journal.note_done("abc")
        journal.close()
        with open(tmp_path / "j.jsonl", "a") as handle:
            handle.write('{"event": "done", "key": "tr')  # kill mid-write
        state = RunJournal(tmp_path / "j.jsonl").load()
        assert state.done == {"abc"}

    def test_stale_package_version_restarts_the_journal(self, tmp_path,
                                                        monkeypatch):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.begin(PLAN)
        journal.note_done("abc")
        journal.close()
        monkeypatch.setattr("repro.api.journal._package_version",
                            lambda: "0.0.0-other")
        assert RunJournal(tmp_path / "j.jsonl").load().done == set()


class TestPoolLifecycle:
    def test_pool_persists_across_plans(self):
        with Runner(store=MemoryStore(), parallel=2) as runner:
            runner.run(Plan(PLAN.specs[:2]))
            pool = runner._pool
            assert pool is not None
            runner.run(PLAN)
            assert runner._pool is pool, "pool must be reused across plans"
        assert runner._pool is None

    def test_parallel_minus_one_pool_clamped_to_tasks(self, monkeypatch):
        # 2 specs -> at most 2 tasks after splitting: a many-core CI
        # runner must not fork cpu_count() idle workers for them.
        monkeypatch.setattr("repro.api.runner.multiprocessing.cpu_count",
                            lambda: 8)
        with Runner(store=MemoryStore(), parallel=-1) as runner:
            runner.run(Plan(PLAN.specs[:2]))
            assert runner._pool is not None
            assert runner._pool_size <= 2

    def test_max_inflight_bounds_are_accepted(self):
        with Runner(store=MemoryStore(), parallel=2,
                    max_inflight=1) as runner:
            records = runner.run(PLAN)
        assert len(records) == len(PLAN)


class TestParallelFloorWarning:
    @pytest.fixture
    def reset_floor_warning(self):
        previous = core._floor_warning_emitted
        core._floor_warning_emitted = False
        yield
        core._floor_warning_emitted = previous

    def test_single_parent_side_warning(self, reset_floor_warning):
        # pgpdec at tiny scale hits the kernel-iteration floor; workers
        # suppress their per-process warning, the parent re-derives one
        # from LoopRecord.iteration_floor.
        plan = Plan.grid(benchmarks=["pgpdec"],
                         variants=("mdc/prefclus", "ddgt/prefclus"),
                         scale=0.01)
        with Runner(store=MemoryStore(), parallel=2) as runner:
            with pytest.warns(RuntimeWarning,
                              match="kernel-iteration floor") as caught:
                records = runner.run(plan)
        assert any(l.iteration_floor for r in records for l in r.loops)
        floor_warnings = [w for w in caught
                          if "kernel-iteration floor" in str(w.message)]
        assert len(floor_warnings) == 1, (
            "exactly one warning, not one per worker"
        )
        assert "worker process" in str(floor_warnings[0].message)


class TestShardedStore:
    def test_entries_land_in_two_hex_shards(self, tmp_path):
        store = JsonFileStore(tmp_path)
        for i in range(20):
            store.put_payload(f"key-{i}", {"i": i})
        shards = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert shards, "sharded layout must create shard directories"
        assert all(len(p.name) == 2 for p in shards)
        assert not list(tmp_path.glob("*.json")), "no flat entries"
        assert sum(1 for _ in store.keys()) == 20

    def test_legacy_flat_entries_still_readable(self, tmp_path):
        flat = JsonFileStore(tmp_path, sharded=False)
        flat.put_payload("legacy", {"x": 1})
        assert (tmp_path / "legacy.json").exists()
        sharded = JsonFileStore(tmp_path)
        assert sharded.get_payload("legacy") == {"x": 1}
        assert list(sharded.keys()) == ["legacy"]
        assert sharded.size_bytes() > 0

    def test_flat_entry_migrates_on_write(self, tmp_path):
        JsonFileStore(tmp_path, sharded=False).put_payload("k", {"x": 1})
        store = JsonFileStore(tmp_path)
        store.put_payload("k", {"x": 2})
        assert not (tmp_path / "k.json").exists(), "flat copy superseded"
        assert store.entry_path("k").exists()
        assert store.get_payload("k") == {"x": 2}
        assert list(store.keys()) == ["k"]

    def test_index_is_persisted_and_reused(self, tmp_path):
        store = JsonFileStore(tmp_path)
        for i in range(10):
            store.put_payload(f"key-{i}", {"i": i})
        assert sum(1 for _ in store.keys()) == 10  # builds + persists
        assert (tmp_path / "index.meta").exists()
        fresh = JsonFileStore(tmp_path)
        assert sum(1 for _ in fresh.keys()) == 10

    def test_index_picks_up_external_writers(self, tmp_path):
        reader = JsonFileStore(tmp_path)
        reader.put_payload("a", {"x": 1})
        assert list(reader.keys()) == ["a"]  # index now warm
        writer = JsonFileStore(tmp_path)  # another "process"
        writer.put_payload("b", {"x": 2})
        assert sorted(reader.keys()) == ["a", "b"], (
            "a warm index must revalidate against shard dir mtimes"
        )
        time.sleep(0.05)  # let the shard dir mtime tick past the scan's
        writer_entry = writer.entry_path("b")
        writer_entry.unlink()
        # Removals are seen too (the shard dir mtime changed again).
        assert list(reader.keys()) == ["a"]

    def test_own_write_never_masks_a_concurrent_writers_entry(self,
                                                              tmp_path):
        """Regression: an in-process put must *invalidate* its shard's
        index cell, not re-stamp it — stamping the post-write directory
        mtime would permanently hide an entry another process slipped
        into the same shard between our last scan and our write."""
        from repro.api.store import shard_prefix

        # k9 / k26 / k66 share shard '76' (asserted so a hashing change
        # fails loudly instead of silently weakening the test).
        assert len({shard_prefix(k) for k in ("k9", "k26", "k66")}) == 1
        a = JsonFileStore(tmp_path)
        a.put_payload("k9", {"v": 1})
        assert list(a.keys()) == ["k9"]  # A's index is now warm
        b = JsonFileStore(tmp_path)  # another "process"
        b.put_payload("k26", {"v": 2})
        a.put_payload("k66", {"v": 3})  # same shard, right after B
        assert sorted(a.keys()) == ["k26", "k66", "k9"], (
            "A's write must not hide B's concurrent same-shard entry"
        )
        assert a.size_bytes() == sum(
            p.stat().st_size for p in tmp_path.rglob("*.json")
        )

    def test_store_wide_ops_agree_with_disk(self, tmp_path):
        store = JsonFileStore(tmp_path)
        for i in range(25):
            store.put_payload(f"key-{i}", {"i": i})
        on_disk = list(tmp_path.rglob("*.json"))
        assert len(on_disk) == 25
        assert sum(1 for _ in store.keys()) == 25
        assert store.size_bytes() == sum(
            p.stat().st_size for p in on_disk
        )
        assert store.clear() == 25
        assert list(store.keys()) == []
        assert store.size_bytes() == 0
        assert not list(tmp_path.rglob("*.json"))

    def test_prune_uses_the_index_and_stays_correct(self, tmp_path):
        store = JsonFileStore(tmp_path)
        store.put_payload("old", {"x": 1})
        store.put_payload("new", {"x": 2})
        stale = time.time() - 3600
        os.utime(store.entry_path("old"), (stale, stale))
        assert store.prune(older_than_seconds=60) == 1
        assert list(store.keys()) == ["new"]
        assert store.get_payload("old") is None

    def test_corrupt_persisted_index_is_rebuilt(self, tmp_path):
        store = JsonFileStore(tmp_path)
        store.put_payload("k", {"x": 1})
        list(store.keys())
        (tmp_path / "index.meta").write_text("{garbage")
        assert list(JsonFileStore(tmp_path).keys()) == ["k"]

    def test_diskstore_rejects_wrong_shape_in_either_layout(self, tmp_path):
        # Legacy flat garbage must self-heal through the fallback path.
        (tmp_path / "bad.json").write_text("[1, 2]")
        store = DiskStore(tmp_path)
        assert store.get("bad") is None
        assert not (tmp_path / "bad.json").exists()


class TestCliResume:
    def test_resume_requires_disk_store(self, tmp_path, capsys):
        from repro.api.cli import main

        rc = main(["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.1",
                   "--no-cache", "--resume"])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

    def test_run_resume_smoke(self, tmp_path, capsys):
        from repro.api.cli import main

        args = ["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.1",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        journals = list((tmp_path / "journal").glob("*.jsonl"))
        assert len(journals) == 1
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_sweep_resume_smoke(self, tmp_path, capsys):
        from repro.api.cli import main

        args = ["scenarios", "sweep", "--seed", "3", "--count", "2",
                "--scale", "0.05", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert list((tmp_path / "journal").glob("*.jsonl"))
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_journal_root_follows_cache_dir(self, tmp_path):
        assert journal_root(tmp_path) == tmp_path / "journal"
