"""CLI smoke tests — in-process via ``main(argv)`` plus one true
``python -m repro`` subprocess round trip."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestListCommand:
    def test_lists_benchmarks_variants_configs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "epicdec" in out
        assert "mdc/prefclus" in out
        assert "nobal+reg" in out
        assert "figures: 6, 7, 9" in out


class TestRunCommand:
    def test_run_writes_table_json_csv(self, tmp_path, capsys):
        json_path = tmp_path / "records.json"
        csv_path = tmp_path / "records.csv"
        rc = main([
            "run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.1",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gsmdec" in out and "mdc/prefclus" in out

        records = json.loads(json_path.read_text())
        assert len(records) == 1
        assert records[0]["benchmark"] == "gsmdec"
        assert records[0]["loops"]

        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("benchmark,loop,variant")
        assert len(lines) == 1 + len(records[0]["loops"])

    def test_unknown_benchmark_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["run", "doesnotexist", "--scale", "0.1",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_variant_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["run", "gsmdec", "-v", "bogus", "--scale", "0.1",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_machine_config_is_a_clean_error(self, tmp_path,
                                                     capsys):
        rc = main(["run", "gsmdec", "--machine", "doesnotexist",
                   "--scale", "0.1", "--cache-dir", str(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        main(["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.1",
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        info = capsys.readouterr().out
        assert "records   : 1" in info
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_second_run_hits_disk_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.1",
                "--cache-dir", str(cache)]
        main(args)
        first = capsys.readouterr().out
        mtimes = {p: p.stat().st_mtime_ns for p in cache.rglob("*.json")}
        main(args)
        second = capsys.readouterr().out
        assert first == second, "cached rerun must be byte-identical"
        assert mtimes == {
            p: p.stat().st_mtime_ns for p in cache.rglob("*.json")
        }, "cached rerun must not rewrite entries"


class TestCacheArtifactVerbs:
    def _warm(self, tmp_path):
        cache = tmp_path / "cache"
        main(["run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.1",
              "--cache-dir", str(cache)])
        return cache

    def test_artifacts_reports_count_bytes_hit_rate(self, tmp_path,
                                                    capsys):
        cache = self._warm(tmp_path)
        assert (cache / "artifacts").is_dir()
        assert list((cache / "artifacts").rglob("*.json"))
        capsys.readouterr()
        assert main(["cache", "artifacts", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "artifacts    :" in out
        assert "hit rate" in out and "since process start" in out
        assert "unroll" in out

    def test_artifacts_without_lookups_says_so(self, tmp_path, capsys):
        """A standalone invocation (fresh process, no lookups yet) must
        not pretend a 0/0 hit rate is a measurement."""
        from repro.api.artifacts import reset_artifact_stats

        reset_artifact_stats()
        assert main(["cache", "artifacts",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no artifact lookups in this process" in out

    def test_info_mentions_artifacts(self, tmp_path, capsys):
        cache = self._warm(tmp_path)
        capsys.readouterr()
        main(["cache", "info", "--cache-dir", str(cache)])
        assert "artifacts :" in capsys.readouterr().out

    def test_clear_clears_both_stores(self, tmp_path, capsys):
        cache = self._warm(tmp_path)
        assert list((cache / "artifacts").rglob("*.json"))
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 cached records" in out
        assert "artifacts" in out
        assert not [p for p in cache.rglob("*.json")
                    if "artifacts" not in p.parts]
        assert not list((cache / "artifacts").rglob("*.json"))

    def test_prune_requires_and_parses_age(self, tmp_path, capsys):
        import os
        import time

        from repro.api.cli import parse_age

        assert parse_age("90") == 90.0
        assert parse_age("30m") == 1800.0
        assert parse_age("12h") == 43200.0
        assert parse_age("7d") == 7 * 86400.0
        for bad in ("soon", "nan", "inf", "-5", "nand"):
            with pytest.raises(Exception):
                parse_age(bad)

        cache = self._warm(tmp_path)
        capsys.readouterr()
        rc = main(["cache", "prune", "--cache-dir", str(cache)])
        assert rc == 2, "prune without --older-than is a clean error"
        capsys.readouterr()

        capsys.readouterr()
        rc = main(["cache", "prune", "--older-than", "soonish",
                   "--cache-dir", str(cache)])
        assert rc == 2, "malformed --older-than is a clean error"
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

        stale = time.time() - 3 * 86400
        record_entries = [p for p in cache.rglob("*.json")
                          if "artifacts" not in p.parts]
        assert record_entries
        for path in record_entries:
            os.utime(path, (stale, stale))
        assert main(["cache", "prune", "--older-than", "1d",
                     "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 records" in out
        assert "pruned 0 run journals" in out
        assert not [p for p in cache.rglob("*.json")
                    if "artifacts" not in p.parts]
        # Artifact and journal files were fresh, so they all survive.
        assert list((cache / "artifacts").rglob("*.json"))
        assert list((cache / "journal").glob("*.jsonl"))

        # Aged journals are pruned like everything else.
        for path in (cache / "journal").glob("*.jsonl"):
            os.utime(path, (stale, stale))
        assert main(["cache", "prune", "--older-than", "1d",
                     "--cache-dir", str(cache)]) == 0
        assert "pruned 1 run journals" in capsys.readouterr().out
        assert not list((cache / "journal").glob("*.jsonl"))


class TestScenarioErrorPaths:
    def test_report_on_an_empty_store_is_clean_and_nonzero(self, tmp_path,
                                                           capsys):
        rc = main(["scenarios", "report", "--seed", "1", "--count", "2",
                   "--cache-dir", str(tmp_path / "empty")])
        assert rc == 1, "an absent sweep is not a passed check"
        out = capsys.readouterr().out
        assert "DIFFERENTIAL CHECK INCOMPLETE" in out
        assert "repro scenarios sweep" in out

    def test_bad_machine_name_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["scenarios", "sweep", "--count", "1",
                   "--machine", "gen-bogus", "--scale", "0.1",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestFigureCommand:
    def test_figure7_small_subset(self, tmp_path, capsys):
        out_file = tmp_path / "figure7.txt"
        rc = main([
            "figure", "7", "--benchmarks", "gsmdec", "--scale", "0.1",
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out_file),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Figure 7" in text
        assert out_file.read_text().strip() in text


class TestModuleInvocation:
    def test_python_dash_m_repro_list(self):
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, check=True, env=env,
        )
        assert "mdc/prefclus" in out.stdout

    def test_console_entry_point_metadata(self):
        """pyproject must wire the `repro` script to repro.api.cli:main."""
        text = (Path(__file__).resolve().parent.parent /
                "pyproject.toml").read_text()
        assert 'repro = "repro.api.cli:main"' in text
