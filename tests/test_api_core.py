"""Spec execution internals: iteration floor, memoized profile traces."""

import warnings

import pytest

import repro.api.core as core
from repro.api.core import KERNEL_ITERATION_FLOOR, execute_spec
from repro.api.spec import RunSpec
from repro.workloads import cached_trace_spec, get_benchmark


@pytest.fixture
def reset_floor_warning():
    previous = core._floor_warning_emitted
    core._floor_warning_emitted = False
    yield
    core._floor_warning_emitted = previous


class TestIterationFloor:
    # At scale 0.01 gsmdec's loops scale to 32 original iterations; the
    # aux loop unrolls 4x, so its natural kernel count (8) is floored.
    SPEC = RunSpec(benchmark="gsmdec", variant="mdc/prefclus", scale=0.01)

    def test_floor_recorded_in_loop_record(self, reset_floor_warning):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            record = execute_spec(self.SPEC)
        floored = {r.loop: r for r in record.loops if r.iteration_floor}
        assert floored, "expected at least one floored loop at scale 0.01"
        for loop in floored.values():
            assert loop.iteration_floor == KERNEL_ITERATION_FLOOR
            assert loop.kernel_iterations == KERNEL_ITERATION_FLOOR
        # Round-trips through the record serialization.
        clone = type(record).from_dict(record.to_dict())
        assert [r.iteration_floor for r in clone.loops] == [
            r.iteration_floor for r in record.loops
        ]

    def test_unfloored_loop_records_zero(self):
        record = execute_spec(
            RunSpec(benchmark="gsmdec", variant="mdc/prefclus", scale=1.0)
        )
        assert all(r.iteration_floor == 0 for r in record.loops)

    def test_warning_is_emitted_once_per_process(self, reset_floor_warning):
        with pytest.warns(RuntimeWarning, match="kernel-iteration floor"):
            execute_spec(self.SPEC)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            execute_spec(
                RunSpec(benchmark="gsmenc", variant="mdc/prefclus",
                        scale=0.01)
            )  # must not raise: the warning fired already


class TestMemoizedProfileTrace:
    def test_one_spec_per_seed_and_length(self):
        bench = get_benchmark("gsmdec")
        first = cached_trace_spec(256, seed=bench.profile_seed)
        second = cached_trace_spec(256, seed=bench.profile_seed)
        assert first is second, "profile trace specs must be memoized"
        assert cached_trace_spec(128, seed=bench.profile_seed) is not first
