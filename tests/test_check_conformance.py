"""The model/simulator conformance bridge: every simulator trace must
replay through the protocol model transition-by-transition."""

import pytest

from repro.check.conformance import (
    conformance_machine,
    issue_schedules,
    run_conformance,
    run_program,
    subblock_address,
)
from repro.check.model import CORE_TRANSITIONS, ModelOp
from repro.errors import CheckError, ReproError
from repro.sim.interleave import block_id, home_cluster


def ld(index, cluster, sb):
    return ModelOp(index, cluster, "load", sb)


def st(index, cluster, sb):
    return ModelOp(index, cluster, "store", sb)


class TestAddressScheme:
    def test_addresses_map_to_distinct_blocks_and_right_homes(self):
        machine = conformance_machine(2)
        for sb in range(4):
            addr = subblock_address(machine, sb)
            assert block_id(machine, addr) == sb
            assert home_cluster(machine, addr) == sb % 2

    def test_indivisible_interleave_rejected(self):
        # 3 clusters x 4-byte interleave does not divide the 32-byte
        # block; either the config or the bridge must refuse.
        with pytest.raises(ReproError):
            conformance_machine(3)


class TestRunProgram:
    def test_single_remote_load_agrees(self):
        bridge = run_program((ld(0, 1, 0),), (0,))
        assert bridge.transitions >= 3  # issue, request, fill, response
        assert bridge.coverage.get("issue_remote")
        assert bridge.coverage.get("deliver_response")

    def test_store_load_chain_agrees(self):
        bridge = run_program(
            (st(0, 0, 0), ld(1, 0, 0)), (0, 1)
        )
        assert bridge.coverage.get("issue_local_miss")

    def test_schedule_length_mismatch_raises(self):
        with pytest.raises(CheckError, match="lengths differ"):
            run_program((ld(0, 0, 0),), (0, 1))

    def test_issue_schedules_cover_the_timings(self):
        schedules = issue_schedules(3)
        assert (0, 0, 0) in schedules  # back-to-back
        assert (0, 25, 50) in schedules  # fully drained between ops
        assert all(len(s) == 3 for s in schedules)


class TestBattery:
    def test_full_battery_agrees_and_covers_every_transition(self):
        report = run_conformance(op_counts=(2,))
        assert report.ok, report.summary()
        assert report.missing_transitions() == []
        assert report.programs == 8 ** 2
        assert report.runs == report.programs * len(issue_schedules(2))
        assert report.transitions > 0
        for name in CORE_TRANSITIONS:
            assert report.coverage.get(name, 0) > 0, name

    def test_summary_renders(self):
        report = run_conformance(
            programs=[(ld(0, 1, 0),)], schedules=[(0,)]
        )
        text = report.summary()
        assert "transitions agreed" in text
        assert "verdict" in text
