"""Property tests over the scenario generator (the satellite invariants):

* determinism — same name => byte-identical DDG (fingerprint equality),
  across fresh generator invocations and cache-bypassing rebuilds;
* validity — every generated graph passes the structural verifier after
  conservative disambiguation, and compiles to a validated modulo
  schedule under every coherence mode;
* the differential invariant — MDC and DDGT runs report zero coherence
  violations on generated scenarios (only free scheduling may violate).
"""

from __future__ import annotations

import pytest

from repro.alias.disambiguation import add_memory_dependences
from repro.api.core import execute_spec
from repro.api.spec import RunSpec
from repro.arch.config import BASELINE_CONFIG
from repro.ir.verify import verify_ddg
from repro.scenarios import (
    FAMILIES,
    ScenarioParams,
    build_scenario_ddg,
    sample_scenarios,
)
from repro.sched.pipeline import CoherenceMode, Heuristic, compile_loop
from repro.workloads.traces import trace_factory

#: The ~100 seeded scenarios the generator-level properties run over.
SAMPLE = sample_scenarios(seed=1234, count=102)


def test_sample_covers_every_family():
    assert {p.family for p in SAMPLE} == set(FAMILIES)


@pytest.mark.parametrize(
    "params", SAMPLE, ids=lambda p: p.name,
)
def test_generation_is_deterministic_and_valid(params: ScenarioParams):
    ddg = build_scenario_ddg(params)
    again = build_scenario_ddg(ScenarioParams.parse(params.name))
    assert ddg.fingerprint() == again.fingerprint()

    # Structural validity under the compiler's conservative memory
    # disambiguation — the invariant the scheduler relies on.
    work = ddg.clone()
    add_memory_dependences(work)
    verify_ddg(work, BASELINE_CONFIG)

    assert len(ddg.memory_instructions()) >= 1
    assert all(instr.mem is None or instr.mem.offset >= 0 for instr in ddg)


# ----------------------------------------------------------------------
# Compile + simulate invariants on a representative subset (two scenarios
# per family, three coherence modes each: 36 pipeline runs).
# ----------------------------------------------------------------------
_COMPILED_SUBSET = [
    params
    for family in FAMILIES
    for params in [p for p in SAMPLE if p.family == family][:2]
]


@pytest.mark.parametrize("params", _COMPILED_SUBSET, ids=lambda p: p.name)
@pytest.mark.parametrize("mode", list(CoherenceMode), ids=lambda m: m.value)
def test_scenarios_compile_to_valid_schedules(params, mode):
    ddg = build_scenario_ddg(params)
    compiled = compile_loop(
        ddg,
        BASELINE_CONFIG,
        coherence=mode,
        heuristic=Heuristic.PREFCLUS,
        trace_factory=trace_factory(64, seed=5),
        profile_iterations=64,
    )
    compiled.schedule.validate()  # redundant with check=True; explicit
    assert compiled.ii >= 1


@pytest.mark.parametrize(
    "params",
    [p for family in FAMILIES
     for p in [q for q in SAMPLE if q.family == family][:1]],
    ids=lambda p: p.name,
)
@pytest.mark.parametrize("variant", ["mdc/prefclus", "ddgt/mincoms"])
def test_coherent_modes_never_violate(params, variant):
    record = execute_spec(
        RunSpec(benchmark=params.name, variant=variant, scale=0.05)
    )
    assert record.violations == 0
