"""Property-based tests of the observation oracle.

:func:`repro.sim.coherence.classify_observation` is the single verdict
function shared by the live :class:`~repro.sim.coherence.CoherenceChecker`
and the conformance bridge, so its contract is load-bearing for every
violation count in the repo: it must be *total* over optional
``(iteration, seq)`` versions and *consistent with version order* —
older-than-expected is stale, younger-than-expected is future, equal is
clean, and ``None`` (initial memory contents) sits below every stamped
version.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.coherence import classify_observation

#: Optional versions: None is the initial memory contents; stamped
#: versions are (iteration, seq) pairs, totally ordered lexically.
versions = st.one_of(
    st.none(),
    st.tuples(st.integers(0, 50), st.integers(0, 50)),
)


def _rank(version):
    """Total order over optional versions: None below every store."""
    return (-1, -1) if version is None else version


@given(expected=versions, observed=versions)
def test_total_and_closed(expected, observed):
    """Never raises, and the verdict is one of exactly three values."""
    assert classify_observation(expected, observed) in (
        None, "stale", "future",
    )


@given(version=versions)
def test_exact_observation_is_clean(version):
    assert classify_observation(version, version) is None


@given(expected=versions, observed=versions)
def test_clean_only_when_exact(expected, observed):
    verdict = classify_observation(expected, observed)
    assert (verdict is None) == (expected == observed)


@given(expected=versions, observed=versions)
def test_order_consistency(expected, observed):
    """The verdict is determined by version order alone."""
    verdict = classify_observation(expected, observed)
    if _rank(observed) < _rank(expected):
        assert verdict == "stale"
    elif _rank(observed) > _rank(expected):
        assert verdict == "future"
    else:
        assert verdict is None


@given(a=versions, b=versions)
def test_verdicts_are_antisymmetric(a, b):
    """Swapping oracle and observation flips stale <-> future."""
    forward = classify_observation(a, b)
    backward = classify_observation(b, a)
    flipped = {None: None, "stale": "future", "future": "stale"}
    assert backward == flipped[forward]
