"""Per-model protocol checking (:mod:`repro.check.variants`).

Each registered memory model carries its own check model: the explorer
must prove all of them safe on disciplined programs, the conformance
bridge must replay each live memory system through its matching
transition table without disagreement, and the model registry and the
check registry must agree on names.
"""

import pytest

from repro.check import CHECK_MODELS, check_protocol, named_check_model
from repro.check.conformance import run_conformance
from repro.check.model import ProtocolModel
from repro.check.variants import DirectoryProtocolModel, DLSProtocolModel
from repro.errors import ConfigError
from repro.sim.models import model_names

ALL_MODELS = tuple(sorted(CHECK_MODELS))


class TestRegistry:
    def test_one_check_model_per_memory_model(self):
        assert tuple(sorted(CHECK_MODELS)) == model_names()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="no check model"):
            named_check_model("mesi")

    def test_tables_cover_core_transitions(self):
        for cls in CHECK_MODELS.values():
            assert cls.core_transitions()
            assert set(cls.core_transitions()) <= set(cls.table_by_name())


class TestExplorer:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_disciplined_programs_are_safe(self, model):
        report = check_protocol(op_count=2, model=model)
        assert report.ok, report.summary()
        assert report.model == model

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_every_core_transition_reachable(self, model):
        """Mutation-only transitions fire only under a seeded bug; every
        *core* transition must be reachable from clean programs."""
        report = check_protocol(op_count=3, model=model)
        assert report.ok, report.summary()
        fired = {name for name, count
                 in report.transition_coverage.items() if count}
        assert fired == set(named_check_model(model).core_transitions())

    def test_dls_still_catches_seeded_bugs(self):
        """The placement change must not blind the checker: every
        snooping mutation stays detectable under the DLS table."""
        from repro.check.mutations import MUTATIONS

        for mutation in MUTATIONS:
            report = check_protocol(op_count=3, model="dls",
                                    mutation=mutation,
                                    disciplined_only=True)
            assert report.counterexamples, (
                f"mutation {mutation!r} escaped the DLS checker"
            )

    def test_directory_rejects_mutations(self):
        with pytest.raises(ConfigError, match="snooping-flow"):
            check_protocol(op_count=2, model="directory",
                           mutation="stale_read")


class TestModels:
    def test_dls_overrides_placement_only(self):
        assert DLSProtocolModel.TRANSITION_TABLE is (
            ProtocolModel.TRANSITION_TABLE
        )

    def test_directory_decouples_home_and_owner(self):
        model = DirectoryProtocolModel(2, 4, ())
        homes = [model.home(sb) for sb in range(4)]
        owners = [model.data_home(sb) for sb in range(4)]
        assert homes == [0, 1, 0, 1]
        assert owners == [0, 0, 1, 1]
        # sb2: the home is not the owner -> the forwarded hop exists.
        assert homes[2] != owners[2]

    def test_directory_table_has_forward_family(self):
        names = set(DirectoryProtocolModel.table_by_name())
        assert {"issue_forward", "deliver_request_forward",
                "deliver_forward_hit", "deliver_forward_miss",
                "deliver_forward_combine"} <= names


class TestConformance:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_simulator_conforms(self, model):
        report = run_conformance(op_counts=(2,), model=model)
        assert report.ok, report.summary()
        assert report.model == model
        assert report.missing_transitions() == []

    def test_memory_factory_override(self):
        """Satellite: the bridge accepts an explicit factory instead of
        hard-wiring the snooping MemorySystem."""
        from repro.sim.memory import MemorySystem

        built = []

        def factory(machine, stats, trace):
            system = MemorySystem(machine, stats, trace=trace)
            built.append(system)
            return system

        report = run_conformance(op_counts=(2,), memory_factory=factory)
        assert report.ok, report.summary()
        assert built
