"""The pluggable memory-model layer (:mod:`repro.sim.models`).

Covers the registry, per-model simulation behaviour across all three
engines, the per-kind bus-traffic breakdown, and how model identity is
woven through specs, records, plans, the sweep harness, the bench grids
and the CLI.
"""

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.arch.config import split_model_suffix
from repro.errors import ConfigError, WorkloadError
from repro.ir import DdgBuilder
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import simulate
from repro.sim.executor import ENGINES
from repro.sim.models import (
    DEFAULT_MODEL,
    MODELS,
    model_names,
    named_model,
)
from repro.workloads import trace_factory


def small_loop():
    """A two-access loop striding across blocks, so every model routes
    some traffic off-cluster."""
    b = DdgBuilder("models-probe")
    b.load("x", mem=MemRef("A", stride=16), name="ld")
    b.store("x", mem=MemRef("B", stride=16, ambiguous=True), name="st")
    return b.build()


def compiled(ddg, **kwargs):
    defaults = dict(
        coherence=CoherenceMode.MDC,
        heuristic=Heuristic.PREFCLUS,
        trace_factory=trace_factory(64, seed=1),
        unroll_factor=1,
    )
    defaults.update(kwargs)
    return compile_loop(ddg, BASELINE_CONFIG, **defaults)


def run(model, engine="events", iterations=48):
    result = compiled(small_loop())
    trace = trace_factory(64, seed=2)(result.ddg)
    return simulate(result, trace, iterations=iterations, engine=engine,
                    model=model)


# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_models_registered(self):
        assert model_names() == ("directory", "dls", "snooping")
        assert DEFAULT_MODEL == "snooping"

    def test_unknown_model_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown memory model"):
            named_model("mesi")

    def test_descriptions_are_nonempty(self):
        for name in model_names():
            assert MODELS[name].description

    def test_default_model_is_explicit_snooping(self):
        ddg_result = compiled(small_loop())
        trace = trace_factory(64, seed=2)(ddg_result.ddg)
        implicit = simulate(ddg_result, trace, iterations=48)
        explicit = simulate(ddg_result, trace, iterations=48,
                            model="snooping")
        assert implicit.stats.to_dict() == explicit.stats.to_dict()


class TestModelBehaviour:
    @pytest.mark.parametrize("model", model_names())
    def test_engines_agree(self, model):
        baseline = run(model, engine="events")
        for engine in ENGINES:
            sim = run(model, engine=engine)
            assert sim.stats.to_dict() == baseline.stats.to_dict()
            assert sim.compute_cycles == baseline.compute_cycles
            assert sim.stall_cycles == baseline.stall_cycles
            assert (sim.stats.bus_transfer_kinds
                    == baseline.stats.bus_transfer_kinds)

    @pytest.mark.parametrize("model", model_names())
    @pytest.mark.parametrize("engine", ENGINES)
    def test_kind_breakdown_sums_to_scalar(self, model, engine):
        sim = run(model, engine=engine)
        kinds = sim.stats.bus_transfer_kinds
        assert sum(kinds.values()) == sim.stats.bus_transfers

    def test_models_route_differently(self):
        """The three models are genuinely different machines: their bus
        traffic differs on a block-striding loop."""
        transfers = {m: run(m).stats.bus_transfers for m in model_names()}
        assert len(set(transfers.values())) > 1

    def test_directory_emits_forward_traffic(self):
        kinds = run("directory").stats.bus_transfer_kinds
        assert kinds.get("fwd_load", 0) + kinds.get("fwd_store", 0) > 0

    def test_single_slice_models_reject_attraction(self):
        machine = BASELINE_CONFIG.with_attraction_buffers()
        from repro.sim.stats import SimStats

        for name in ("dls", "directory"):
            with pytest.raises(ConfigError, match="Attraction"):
                named_model(name).build(machine, SimStats())

    @pytest.mark.parametrize("model", model_names())
    def test_disciplined_runs_are_violation_free(self, model):
        assert run(model).violations.total == 0


# ----------------------------------------------------------------------
class TestSpecIntegration:
    def test_machine_suffix_selects_model(self):
        from repro.api.spec import RunSpec

        spec = RunSpec("gsmdec", "mdc/prefclus", machine="baseline-mmdls")
        assert spec.machine == "baseline"
        assert spec.model == "dls"

    def test_suffix_split_helper(self):
        assert split_model_suffix("baseline-mmdls") == ("baseline", "dls")
        assert split_model_suffix("baseline") == ("baseline", None)

    def test_conflicting_suffix_and_model(self):
        from repro.api.spec import RunSpec

        with pytest.raises(ConfigError, match="conflicting memory models"):
            RunSpec("gsmdec", "mdc/prefclus", machine="baseline-mmdls",
                    model="directory")

    def test_unknown_model_rejected_at_spec_time(self):
        from repro.api.spec import RunSpec

        with pytest.raises(ConfigError, match="unknown memory model"):
            RunSpec("gsmdec", "mdc/prefclus", model="moesi")

    def test_content_hash_separates_models(self):
        from repro.api.spec import RunSpec

        hashes = {
            RunSpec("gsmdec", "mdc/prefclus", model=m).content_hash
            for m in model_names()
        }
        assert len(hashes) == len(model_names())

    def test_suffix_and_field_hash_identically(self):
        from repro.api.spec import RunSpec

        by_suffix = RunSpec("gsmdec", "mdc/prefclus",
                            machine="baseline-mmdirectory")
        by_field = RunSpec("gsmdec", "mdc/prefclus", model="directory")
        assert by_suffix.content_hash == by_field.content_hash

    def test_plan_grid_models_axis(self):
        from repro.api.spec import Plan

        plan = Plan.grid(benchmarks=["gsmdec"], variants=["mdc/prefclus"],
                         models=("snooping", "dls"))
        assert len(plan) == 2
        assert sorted(spec.model for spec in plan) == ["dls", "snooping"]

    def test_record_serialization_omits_default_model(self):
        from repro.api.records import RunRecord

        default = RunRecord("gsmdec", "mdc/prefclus")
        assert "model" not in default.to_dict()
        assert RunRecord.from_dict(default.to_dict()).model == "snooping"
        dls = RunRecord("gsmdec", "mdc/prefclus", model="dls")
        assert dls.to_dict()["model"] == "dls"
        assert RunRecord.from_dict(dls.to_dict()).model == "dls"


# ----------------------------------------------------------------------
class TestSweepIntegration:
    def _record(self, name, variant, violations, model):
        from repro.api.records import LoopRecord, RunRecord
        from repro.sim.stats import SimStats

        loop = LoopRecord(
            benchmark=name, loop="main", variant=variant, ii=4, unroll=1,
            kernel_iterations=8, compute_cycles=32, stall_cycles=0,
            stats=SimStats(), violations=violations, static_copies=0,
            replicated_instances=0, fake_consumers=0,
        )
        return RunRecord(name, variant, scale=0.1, model=model,
                         loops=[loop])

    def test_summaries_group_by_model(self):
        from repro.scenarios.generator import sample_scenarios
        from repro.scenarios.sweep import SUMMARY_COLUMNS, summarize

        name = sample_scenarios(0, 1)[0].name
        records = [
            self._record(name, "mdc/prefclus", 0, model)
            for model in ("snooping", "dls")
        ]
        result = summarize(records)
        assert "model" in SUMMARY_COLUMNS
        assert SUMMARY_COLUMNS[-3:] == ("simulated", "skipped", "source")
        assert sorted(s.model for s in result.summaries) == [
            "dls", "snooping",
        ]

    def test_anomaly_echoes_non_default_model(self):
        from repro.scenarios.generator import sample_scenarios
        from repro.scenarios.sweep import summarize

        name = sample_scenarios(0, 1)[0].name
        result = summarize([
            self._record(name, "mdc/prefclus", 3, "directory"),
        ])
        assert len(result.anomalies) == 1
        assert result.anomalies[0].endswith("--model directory")

    def test_default_model_anomaly_is_unchanged(self):
        from repro.scenarios.generator import sample_scenarios
        from repro.scenarios.sweep import summarize

        name = sample_scenarios(0, 1)[0].name
        result = summarize([
            self._record(name, "mdc/prefclus", 3, "snooping"),
        ])
        assert result.anomalies[0].endswith("--scale 0.1")


# ----------------------------------------------------------------------
class TestBenchIntegration:
    def _config(self, model):
        return {
            "name": "t", "repeat": 1,
            "series": [{
                "key": "k", "benchmarks": ["gsmdec"],
                "variants": ["mdc/prefclus"], "machines": ["baseline"],
                "scale": 0.05, "model": model,
            }],
        }

    def test_series_model_reaches_plan(self):
        from repro.bench.grid import GridConfig

        config = GridConfig.from_dict(self._config("dls"))
        (spec,) = list(config.series[0].plan())
        assert spec.model == "dls"

    def test_unknown_series_model_rejected(self):
        from repro.bench.grid import GridConfig

        with pytest.raises(WorkloadError, match="unknown memory model"):
            GridConfig.from_dict(self._config("mesi"))

    def test_default_grid_has_model_series(self):
        from repro.bench.grid import GridConfig

        config = GridConfig.load("benchmarks/grids/default.json")
        models = {series.model for series in config.series}
        assert {"snooping", "dls", "directory"} <= models


# ----------------------------------------------------------------------
class TestCli:
    def test_list_enumerates_models(self, capsys):
        from repro.api.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "memory models" in out
        for name in model_names():
            assert name in out

    def test_run_accepts_model_flag(self, capsys):
        from repro.api.cli import main

        code = main([
            "run", "gsmdec", "-v", "mdc/prefclus", "--scale", "0.02",
            "--no-cache", "--model", "dls",
        ])
        assert code == 0
        assert "gsmdec" in capsys.readouterr().out
