"""Executor tests: issue timing, the latency ladder, stall-on-use."""

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.errors import SimulationError
from repro.ir import DdgBuilder
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import simulate
from repro.workloads import trace_factory
from repro.workloads.traces import AddressTrace


def single_load_loop(stride: int, consumer: bool = True):
    b = DdgBuilder("one-load")
    b.load("x", mem=MemRef("A", stride=stride), name="ld")
    if consumer:
        b.ialu("y", "x", name="use")
    return b.build()


def compiled(ddg, **kwargs):
    defaults = dict(
        coherence=CoherenceMode.NONE,
        heuristic=Heuristic.MINCOMS,
        trace_factory=trace_factory(64, seed=1),
        unroll_factor=1,
    )
    defaults.update(kwargs)
    return compile_loop(ddg, BASELINE_CONFIG, **defaults)


class TestBasicExecution:
    def test_compute_cycles_equal_kernel_slots(self):
        """Without stalls the machine retires exactly
        length + (N-1) * II kernel indexes."""
        ddg = single_load_loop(stride=16)  # single-home, cluster 0
        result = compiled(ddg)
        trace = trace_factory(100, seed=2)(result.ddg)
        sim = simulate(result, trace, iterations=100)
        expected = result.schedule.length + 99 * result.schedule.ii
        assert sim.compute_cycles == expected

    def test_iterations_bounded_by_trace(self):
        ddg = single_load_loop(stride=16)
        result = compiled(ddg)
        trace = trace_factory(10, seed=2)(result.ddg)
        with pytest.raises(SimulationError):
            simulate(result, trace, iterations=50)

    def test_all_instances_issue(self):
        ddg = single_load_loop(stride=16)
        result = compiled(ddg)
        trace = trace_factory(50, seed=2)(result.ddg)
        sim = simulate(result, trace, iterations=50)
        assert sim.stats.issued_ops == 50 * len(result.ddg)


class TestLatencyLadder:
    def _run(self, base_of, pin_cluster=0, iterations=64):
        """One load (+consumer) pinned to a cluster, trace pinned to an
        address, so the access class is fully controlled."""
        b = DdgBuilder("probe")
        b.load("x", mem=MemRef("A", stride=0, width=4), name="ld")
        b.ialu("y", "x", name="use")
        ddg = b.build()
        for v in list(ddg):
            ddg.pin_cluster(v.iid, pin_cluster)
        result = compiled(ddg)
        trace = AddressTrace(
            result.ddg, num_iterations=iterations, base_of=base_of
        )
        return simulate(result, trace, iterations=iterations), result

    def test_local_hits_do_not_stall(self):
        # address 0 homes in cluster 0; the load is pinned there.
        sim, _ = self._run({"A": 0}, pin_cluster=0)
        assert sim.stall_cycles <= BASELINE_CONFIG.next_level.latency
        from repro.sim.stats import AccessType

        assert sim.stats.accesses[AccessType.LOCAL_HIT] >= 62

    def test_remote_hits_stall_on_use(self):
        # address 4 homes in cluster 1; the load is pinned to cluster 0.
        sim, result = self._run({"A": 4}, pin_cluster=0)
        from repro.sim.stats import AccessType

        remote = (
            sim.stats.accesses[AccessType.REMOTE_HIT]
            + sim.stats.accesses[AccessType.REMOTE_MISS]
        )
        assert remote >= 60
        # Each remote hit makes the consumer wait roughly the ladder gap.
        assert sim.stall_cycles > sim.compute_cycles

    def test_remote_stall_close_to_ladder(self):
        sim, result = self._run({"A": 4}, pin_cluster=0, iterations=200)
        lat = BASELINE_CONFIG.memory_latencies()
        # Separation scheduled for a local hit; actual is a remote hit.
        per_iter = sim.stall_cycles / 200
        assert lat.remote_hit - lat.local_hit - 2 <= per_iter <= lat.remote_hit

    def test_loads_without_consumers_never_stall(self):
        ddg = single_load_loop(stride=4, consumer=False)
        result = compiled(ddg, unroll_factor=1)
        trace = trace_factory(64, seed=2)(result.ddg)
        sim = simulate(result, trace, iterations=64)
        assert sim.stall_cycles == 0


class TestStoreSemantics:
    def test_stores_never_stall_the_core(self):
        b = DdgBuilder("stores")
        b.store(mem=MemRef("A", stride=4), name="st")
        ddg = b.build()
        result = compiled(ddg, unroll_factor=1)
        trace = trace_factory(64, seed=2)(result.ddg)
        sim = simulate(result, trace, iterations=64)
        assert sim.stall_cycles == 0

    def test_replica_nullification_counted(self, figure3):
        ddg, _ = figure3
        result = compiled(
            ddg,
            coherence=CoherenceMode.DDGT,
            add_mem_deps=False,
        )
        trace = trace_factory(64, seed=2)(result.ddg)
        sim = simulate(result, trace, iterations=64)
        # 2 logical stores x 64 iterations: 3 of 4 instances nullified.
        assert sim.stats.nullified_stores == 2 * 64 * 3
