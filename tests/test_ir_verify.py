"""Graph-validation tests: every invariant class must be caught."""

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.errors import GraphError
from repro.ir import Ddg, DdgBuilder, DepKind, Opcode, verify_ddg


def two_mem_ops():
    ddg = Ddg()
    store = ddg.add_instruction(Opcode.STORE, srcs=(), mem=MemRef("A"))
    load = ddg.add_instruction(Opcode.LOAD, dest="r", mem=MemRef("A"))
    return ddg, store, load


class TestMemoryEdgeShapes:
    def test_valid_graph_passes(self, figure3):
        ddg, _ = figure3
        verify_ddg(ddg, BASELINE_CONFIG)

    def test_mf_must_be_store_to_load(self):
        ddg, store, load = two_mem_ops()
        ddg.add_edge(load.iid, store.iid, DepKind.MF, 1)
        with pytest.raises(GraphError, match="MF edge"):
            verify_ddg(ddg)

    def test_ma_must_be_load_to_store(self):
        ddg, store, load = two_mem_ops()
        ddg.add_edge(store.iid, load.iid, DepKind.MA, 1)
        with pytest.raises(GraphError, match="MA edge"):
            verify_ddg(ddg)

    def test_mo_must_join_stores(self):
        ddg, store, load = two_mem_ops()
        ddg.add_edge(store.iid, load.iid, DepKind.MO, 1)
        with pytest.raises(GraphError, match="MO edge"):
            verify_ddg(ddg)

    def test_zero_distance_memory_edge_respects_program_order(self):
        ddg, store, load = two_mem_ops()
        # load (seq 1) -> store (seq 0)? reversed: store->load with the
        # *store later in program order* is the violation.
        ddg2 = Ddg()
        load2 = ddg2.add_instruction(Opcode.LOAD, dest="r", mem=MemRef("A"))
        store2 = ddg2.add_instruction(Opcode.STORE, mem=MemRef("A"))
        ddg2.add_edge(store2.iid, load2.iid, DepKind.MF, 0)
        with pytest.raises(GraphError, match="program order"):
            verify_ddg(ddg2)

    def test_sync_must_target_store(self):
        ddg, store, load = two_mem_ops()
        ddg.add_edge(store.iid, load.iid, DepKind.SYNC, 0)
        with pytest.raises(GraphError, match="SYNC"):
            verify_ddg(ddg)

    def test_rf_source_must_define_register(self):
        ddg, store, load = two_mem_ops()
        ddg.add_edge(store.iid, load.iid, DepKind.RF, 1)
        with pytest.raises(GraphError, match="defines no register"):
            verify_ddg(ddg)


class TestCycles:
    def test_zero_distance_cycle_detected(self):
        b = DdgBuilder()
        a = b.ialu("a", name="a")
        c = b.ialu("c", "a", name="c")
        ddg = b.build()
        ddg.add_edge(c.iid, a.iid, DepKind.RF, 0)
        with pytest.raises(GraphError, match="cycle"):
            verify_ddg(ddg)

    def test_loop_carried_cycle_is_fine(self):
        b = DdgBuilder()
        b.ialu("acc", b.carried("acc", 1))
        verify_ddg(b.build())


class TestClusterPins:
    def test_pin_out_of_range(self):
        ddg = Ddg()
        ddg.add_instruction(Opcode.IALU, dest="x", required_cluster=7)
        with pytest.raises(GraphError, match="pinned"):
            verify_ddg(ddg, BASELINE_CONFIG)

    def test_pin_in_range(self):
        ddg = Ddg()
        ddg.add_instruction(Opcode.IALU, dest="x", required_cluster=3)
        verify_ddg(ddg, BASELINE_CONFIG)
