"""Unit tests for the simulator's building blocks: interleaving, cache
modules, attraction buffers, buses, next level."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import BASELINE_CONFIG
from repro.arch.config import AttractionBufferConfig, BusConfig, CacheConfig
from repro.sim.attraction import AttractionBuffer
from repro.sim.bus import BusFabric, BusMessage
from repro.sim.cache import CacheModule
from repro.sim.interleave import (
    home_cluster,
    spans_clusters,
    subblock_addresses,
    subblock_id,
)
from repro.sim.nextlevel import NextLevel, NextLevelRequest


class TestInterleave:
    def test_figure1_example(self):
        """Paper Figure 1: an 8-word block, words 0 and 4 form cluster 1's
        subblock (cluster 0 zero-based)."""
        cfg = BASELINE_CONFIG
        assert subblock_addresses(cfg, block=0, cluster=0) == [0, 16]
        assert subblock_addresses(cfg, block=0, cluster=1) == [4, 20]
        assert subblock_addresses(cfg, block=1, cluster=0) == [32, 48]

    def test_home_cluster_wraps(self):
        cfg = BASELINE_CONFIG
        assert [home_cluster(cfg, a) for a in range(0, 32, 4)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_subblock_id(self):
        cfg = BASELINE_CONFIG
        assert subblock_id(cfg, 0) == (0, 0)
        assert subblock_id(cfg, 36) == (1, 1)

    def test_spans_clusters(self):
        cfg = BASELINE_CONFIG
        assert not spans_clusters(cfg, 0, 4)
        assert spans_clusters(cfg, 0, 8)
        assert spans_clusters(cfg, 2, 4)


class TestCacheModule:
    def test_miss_then_hit(self):
        module = CacheModule(CacheConfig())
        assert not module.probe(5)
        module.install(5)
        assert module.probe(5)
        assert module.hits == 1 and module.misses == 1

    def test_lru_eviction(self):
        module = CacheModule(CacheConfig())
        sets = module.num_sets
        a, b, c = 0, sets, 2 * sets  # same set
        module.install(a)
        module.install(b)
        module.probe(a)  # a is now MRU
        victim = module.install(c)
        assert victim is not None and victim.block == b

    def test_dirty_tracking(self):
        module = CacheModule(CacheConfig())
        module.install(1)
        module.mark_dirty(1)
        sets = module.num_sets
        module.install(1 + sets)
        victim = module.install(1 + 2 * sets)
        assert victim.block == 1 and victim.dirty

    def test_invalidate(self):
        module = CacheModule(CacheConfig())
        module.install(9)
        assert module.invalidate(9)
        assert not module.probe(9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
    def test_set_occupancy_never_exceeds_ways(self, blocks):
        config = CacheConfig()
        module = CacheModule(config)
        for block in blocks:
            if not module.probe(block):
                module.install(block)
        for entries in module._sets:
            assert len(entries) <= config.associativity


class TestAttractionBuffer:
    def _ab(self):
        return AttractionBuffer(AttractionBufferConfig(16, 2))

    def test_fill_then_hit(self):
        ab = self._ab()
        ab.fill((3, 1), {100: (0, 5)})
        entry = ab.lookup((3, 1))
        assert entry is not None
        assert entry.versions[100] == (0, 5)

    def test_update_marks_dirty(self):
        ab = self._ab()
        ab.fill((3, 1), {})
        assert ab.update((3, 1), 104, (1, 7))
        assert ab.peek((3, 1)).dirty

    def test_update_missing_returns_false(self):
        ab = self._ab()
        assert not ab.update((9, 0), 0, (0, 0))

    def test_overflow_evicts_lru(self):
        ab = self._ab()
        sets = ab.config.num_sets
        keys = [(k * sets, 1) for k in range(3)]  # same set
        for key in keys:
            ab.fill(key, {})
        assert ab.overflows == 1
        assert ab.peek(keys[0]) is None

    def test_flush_returns_dirty_and_clears(self):
        ab = self._ab()
        ab.fill((1, 0), {})
        ab.fill((2, 0), {})
        ab.update((1, 0), 32, (0, 1))
        dirty = ab.flush()
        assert [e.key for e in dirty] == [(1, 0)]
        assert ab.resident == 0


class TestBusFabric:
    def _collect(self):
        log = []

        def deliver(tag):
            return lambda cycle: log.append((tag, cycle))

        return log, deliver

    def test_transfer_latency(self):
        fabric = BusFabric(BusConfig(4, 2), 4)
        log, deliver = self._collect()
        fabric.send(BusMessage(src=0, dst=1, on_deliver=deliver("m")))
        fabric.inject(0)
        fabric.deliver(1)
        assert log == []
        fabric.deliver(2)
        assert log == [("m", 2)]

    def test_same_source_fifo_order(self):
        """Messages from one cluster arrive in issue order — the property
        the MDC solution relies on (section 3.2)."""
        fabric = BusFabric(BusConfig(4, 2), 4)
        log, deliver = self._collect()
        for k in range(4):
            fabric.send(BusMessage(src=0, dst=1, on_deliver=deliver(k)))
        for cycle in range(12):
            fabric.deliver(cycle)
            fabric.inject(cycle)
        assert [tag for tag, _ in log] == [0, 1, 2, 3]
        cycles = [c for _, c in log]
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == 4  # one injection per source per cycle

    def test_bus_contention_queues(self):
        fabric = BusFabric(BusConfig(1, 2), 4)  # a single bus
        log, deliver = self._collect()
        for src in range(3):
            fabric.send(BusMessage(src=src, dst=3, on_deliver=deliver(src)))
        for cycle in range(10):
            fabric.deliver(cycle)
            fabric.inject(cycle)
        assert len(log) == 3
        cycles = sorted(c for _, c in log)
        assert cycles == [2, 4, 6]  # serialized on the single bus

    def test_pending_counts_queued_and_in_flight(self):
        fabric = BusFabric(BusConfig(1, 2), 2)
        log, deliver = self._collect()
        fabric.send(BusMessage(src=0, dst=1, on_deliver=deliver(0)))
        fabric.send(BusMessage(src=0, dst=1, on_deliver=deliver(1)))
        assert fabric.pending() == 2
        fabric.inject(0)
        assert fabric.pending() == 2
        fabric.deliver(2)
        assert fabric.pending() == 1


class TestNextLevel:
    def test_fixed_latency(self):
        nl = NextLevel(BASELINE_CONFIG.next_level)
        fills = []
        nl.request(NextLevelRequest(on_fill=fills.append))
        for cycle in range(12):
            nl.tick(cycle)
        assert fills == [10]

    def test_port_limit(self):
        nl = NextLevel(BASELINE_CONFIG.next_level)
        fills = []
        for _ in range(6):  # 6 requests, 4 ports
            nl.request(NextLevelRequest(on_fill=fills.append))
        for cycle in range(13):
            nl.tick(cycle)
        assert fills == [10, 10, 10, 10, 11, 11]

    def test_pending(self):
        nl = NextLevel(BASELINE_CONFIG.next_level)
        nl.request(NextLevelRequest(on_fill=lambda c: None))
        assert nl.pending() == 1
        nl.tick(0)
        assert nl.pending() == 1
        for cycle in range(1, 11):
            nl.tick(cycle)
        assert nl.pending() == 0
