"""Modulo scheduler tests: MII bounds, reservation table, IMS, latencies."""

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG, FuKind, MachineConfig
from repro.errors import SchedulingError
from repro.ir import Ddg, DdgBuilder, DepKind, Opcode
from repro.sched.cluster import ClusterAssignment, HeuristicKind
from repro.sched.mii import assignment_res_mii, minimum_ii, rec_mii, res_mii
from repro.sched.modulo import modulo_schedule
from repro.sched.schedule import ReservationTable, edge_latency


class TestResMii:
    def test_memory_bound(self, stream_loop):
        # 3 memory ops over 4 clusters x 1 unit -> ceil(3/4) = 1.
        assert res_mii(stream_loop, BASELINE_CONFIG) == 1

    def test_many_ops_one_kind(self):
        ddg = Ddg()
        for k in range(9):
            ddg.add_instruction(Opcode.IALU, dest=f"r{k}")
        # 9 integer ops / 4 units -> 3.
        assert res_mii(ddg, BASELINE_CONFIG) == 3

    def test_pinned_ops_bound_per_cluster(self):
        ddg = Ddg()
        for k in range(3):
            ddg.add_instruction(
                Opcode.LOAD, dest=f"r{k}", mem=MemRef("A"), required_cluster=0
            )
        assert res_mii(ddg, BASELINE_CONFIG) == 3

    def test_assignment_aware_bound(self):
        ddg = Ddg()
        iids = [
            ddg.add_instruction(Opcode.LOAD, dest=f"r{k}", mem=MemRef("A")).iid
            for k in range(6)
        ]
        spread = ClusterAssignment({iid: i % 4 for i, iid in enumerate(iids)})
        packed = ClusterAssignment({iid: 0 for iid in iids})
        assert assignment_res_mii(ddg, BASELINE_CONFIG, spread) == 2
        assert assignment_res_mii(ddg, BASELINE_CONFIG, packed) == 6


class TestRecMii:
    def test_acyclic_graph(self, stream_loop):
        assert rec_mii(stream_loop, BASELINE_CONFIG) == 1

    def test_simple_recurrence(self):
        # acc = fmul(acc@1): latency 4 over distance 1 -> RecMII 4.
        b = DdgBuilder()
        b.fmul("acc", b.carried("acc", 1))
        assert rec_mii(b.build(), BASELINE_CONFIG) == 4

    def test_two_op_recurrence(self):
        b = DdgBuilder()
        b.ialu("a", b.carried("c", 1), name="a")
        b.ialu("c", "a", name="c")
        # latency 2 around a distance-1 cycle -> RecMII 2.
        assert rec_mii(b.build(), BASELINE_CONFIG) == 2

    def test_minimum_ii_is_max(self):
        b = DdgBuilder()
        b.fmul("acc", b.carried("acc", 1))
        for k in range(9):
            b.ialu(f"r{k}")
        ddg = b.build()
        assert minimum_ii(ddg, BASELINE_CONFIG) == max(
            res_mii(ddg, BASELINE_CONFIG), 4
        )


class TestEdgeLatency:
    def test_rf_from_load_uses_assumed(self, stream_loop):
        load = next(v for v in stream_loop if v.name == "lda")
        edge = next(
            e for e in stream_loop.succs(load.iid) if e.kind is DepKind.RF
        )
        assert edge_latency(edge, stream_loop, BASELINE_CONFIG) == 1
        assert edge_latency(
            edge, stream_loop, BASELINE_CONFIG, {load.iid: 15}
        ) == 15

    def test_sync_and_ma_are_zero(self, figure3):
        ddg, nodes = figure3
        ma = next(e for e in ddg.edges() if e.kind is DepKind.MA)
        assert edge_latency(ma, ddg, BASELINE_CONFIG) == 0

    def test_mf_is_store_latency(self, figure3):
        ddg, _ = figure3
        mf = next(e for e in ddg.edges() if e.kind is DepKind.MF)
        assert edge_latency(mf, ddg, BASELINE_CONFIG) == 1


class TestReservationTable:
    def test_fu_capacity(self):
        table = ReservationTable(BASELINE_CONFIG, ii=2)
        ddg = Ddg()
        a = ddg.add_instruction(Opcode.IALU, dest="a")
        b = ddg.add_instruction(Opcode.IALU, dest="b")
        table.place(a, cluster=0, time=0)
        assert not table.fits(b, cluster=0, time=2)  # same modulo slot
        assert table.fits(b, cluster=0, time=1)
        assert table.fits(b, cluster=1, time=0)  # other cluster

    def test_remove_frees_slot(self):
        table = ReservationTable(BASELINE_CONFIG, ii=2)
        ddg = Ddg()
        a = ddg.add_instruction(Opcode.IALU, dest="a")
        table.place(a, 0, 0)
        table.remove(a, 0, 0)
        assert table.fits(a, 0, 0)

    def test_copies_occupy_bus_for_latency_slots(self):
        table = ReservationTable(BASELINE_CONFIG, ii=4)
        ddg = Ddg()
        copies = [
            ddg.add_instruction(Opcode.COPY, dest=f"c{k}") for k in range(5)
        ]
        # 4 buses, each transfer holds 2 slots; slot 0 overlaps slot 3+1...
        for k in range(4):
            table.place(copies[k], 0, 0)
        assert not table.fits(copies[4], 0, 0)
        assert not table.fits(copies[4], 0, 1)  # window [1,2] overlaps [0,1]?
        # slot 2: windows [2,3] do not overlap [0,1]
        assert table.fits(copies[4], 0, 2)

    def test_conflicting_ops_reports_victims(self):
        table = ReservationTable(BASELINE_CONFIG, ii=1)
        ddg = Ddg()
        a = ddg.add_instruction(Opcode.IALU, dest="a")
        b = ddg.add_instruction(Opcode.IALU, dest="b")
        table.place(a, 0, 0)
        assert table.conflicting_ops(b, 0, 0) == [a.iid]


class TestModuloScheduler:
    def _uniform_assignment(self, ddg, cluster=0):
        return ClusterAssignment({v.iid: cluster for v in ddg})

    def test_stream_loop_schedules_at_mii(self, stream_loop):
        assignment = ClusterAssignment(
            {v.iid: i % 4 for i, v in enumerate(stream_loop)}
        )
        sched = modulo_schedule(stream_loop, BASELINE_CONFIG, assignment)
        sched.validate()
        assert sched.ii >= minimum_ii(stream_loop, BASELINE_CONFIG)

    def test_single_cluster_memory_serialization(self, stream_loop):
        assignment = self._uniform_assignment(stream_loop)
        sched = modulo_schedule(
            stream_loop, BASELINE_CONFIG, assignment,
            min_ii=assignment_res_mii(stream_loop, BASELINE_CONFIG, assignment),
        )
        sched.validate()
        assert sched.ii >= 3  # three memory ops share one memory unit

    def test_figure3_schedules_under_all_coherence(self, figure3):
        ddg, _ = figure3
        assignment = ClusterAssignment({v.iid: 0 for v in ddg})
        sched = modulo_schedule(ddg, BASELINE_CONFIG, assignment)
        sched.validate()

    def test_recurrence_respected(self):
        b = DdgBuilder()
        b.fmul("acc", b.carried("acc", 1), name="mul")
        ddg = b.build()
        sched = modulo_schedule(
            ddg, BASELINE_CONFIG, ClusterAssignment({0: 0})
        )
        assert sched.ii == 4

    def test_impossible_zero_distance_cycle_raises(self):
        ddg = Ddg()
        a = ddg.add_instruction(Opcode.IALU, dest="a")
        c = ddg.add_instruction(Opcode.IALU, dest="c", srcs=("a",))
        ddg.add_edge(a.iid, c.iid, DepKind.RF, 0)
        ddg.add_edge(c.iid, a.iid, DepKind.RF, 0)
        with pytest.raises(SchedulingError):
            modulo_schedule(
                ddg, BASELINE_CONFIG,
                ClusterAssignment({a.iid: 0, c.iid: 0}),
            )

    def test_validate_catches_moved_op(self, stream_loop):
        assignment = ClusterAssignment(
            {v.iid: i % 4 for i, v in enumerate(stream_loop)}
        )
        sched = modulo_schedule(stream_loop, BASELINE_CONFIG, assignment)
        # Corrupt: move a dependent op before its producer.
        from repro.sched.schedule import ScheduledOp

        load = next(v for v in stream_loop if v.name == "add")
        sched.ops[load.iid] = ScheduledOp(load.iid, 0, -100)
        with pytest.raises(SchedulingError):
            sched.validate()
