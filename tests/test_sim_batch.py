"""Batched lockstep engine == per-run events engine, byte for byte.

The batch engine's only contract is *observable equivalence*: whatever
mix of runs shares a :class:`~repro.sim.batch.BatchSimulator`, each
run's serialized stats and coherence verdicts must match a solo
``engine="events"`` simulation exactly.  These tests pin that contract
with a differential cross (families x machines x coherence x
heuristics), property-style composition/batch-size independence checks,
the compat-stepper path for substituted memory systems, and the
record-level plumbing through ``execute_specs_batch`` and
``Runner(engine="batch")``.
"""

import json
import warnings

import pytest

from repro.api.artifacts import MemoryArtifactStore
from repro.api.core import execute_spec, execute_specs_batch
from repro.api.runner import Runner
from repro.api.spec import Plan, RunSpec
from repro.api.store import MemoryStore
from repro.arch import BASELINE_CONFIG
from repro.arch.config import parse_config_name
from repro.errors import SimulationError
from repro.scenarios import ScenarioParams, build_scenario_ddg
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import executor as executor_mod
from repro.sim import simulate
from repro.sim.batch import BatchSimulator, simulate_batch
from repro.sim.memory import MemorySystem
from repro.sim.stats import SimStats
from repro.workloads import trace_factory

SLOWMEM = parse_config_name("gen-c4-mb1x8-rb4x2-cm512b32a2-nl60p2")
ITER = 120


def _compile(family, machine, coherence, heuristic, **params):
    ddg = build_scenario_ddg(ScenarioParams(family=family, **params))
    return compile_loop(
        ddg, machine, coherence=coherence, heuristic=heuristic,
        trace_factory=trace_factory(64, seed=5), profile_iterations=64,
    )


@pytest.fixture(scope="module")
def workloads():
    """A mixed pool crossing family, machine, coherence and heuristic.

    Includes both machines (multi-bus baseline and the single-bus
    slow-memory config), all three coherence modes, both heuristics,
    and an Attraction-Buffers config — every structurally distinct
    stepper path shares batches with every other.
    """
    pool = [
        _compile("stream", BASELINE_CONFIG,
                 CoherenceMode.NONE, Heuristic.MINCOMS, seed=3),
        _compile("gather", SLOWMEM,
                 CoherenceMode.NONE, Heuristic.MINCOMS, seed=3),
        _compile("chase", BASELINE_CONFIG,
                 CoherenceMode.MDC, Heuristic.PREFCLUS, seed=3),
        _compile("alias", SLOWMEM,
                 CoherenceMode.DDGT, Heuristic.MINCOMS, seed=3),
        _compile("stencil", BASELINE_CONFIG,
                 CoherenceMode.DDGT, Heuristic.PREFCLUS, seed=3),
        _compile("gather", SLOWMEM.with_attraction_buffers(8, 2),
                 CoherenceMode.MDC, Heuristic.MINCOMS,
                 size=12, mem_pct=30, seed=4),
    ]
    return [(c, trace_factory(ITER, seed=7)(c.ddg)) for c in pool]


def _fingerprint(result):
    return (json.dumps(result.stats.to_dict(), sort_keys=True)
            + f"|violations={result.violations}")


@pytest.fixture(scope="module")
def events_fingerprints(workloads):
    return [
        _fingerprint(simulate(c, t, iterations=ITER, engine="events"))
        for c, t in workloads
    ]


# ----------------------------------------------------------------------
# Differential: batch == events over the full mixed pool
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("batch_size", [1, 3, 6])
    def test_batch_matches_events(
        self, workloads, events_fingerprints, batch_size
    ):
        results = simulate_batch(
            workloads, iterations=ITER, batch_size=batch_size
        )
        assert [_fingerprint(r) for r in results] == events_fingerprints

    def test_engine_batch_via_simulate(self, workloads,
                                       events_fingerprints):
        c, t = workloads[1]
        got = simulate(c, t, iterations=ITER, engine="batch")
        assert _fingerprint(got) == events_fingerprints[1]

    def test_composition_independence(self, workloads,
                                      events_fingerprints):
        """A run's result must not depend on its batch mates."""
        c, t = workloads[3]
        for mates in ([], [workloads[0]], [workloads[5], workloads[2]]):
            sim = BatchSimulator(batch_size=8)
            run_id = sim.submit(c, t, iterations=ITER)
            for mc, mt in mates:
                sim.submit(mc, mt, iterations=ITER)
            results = sim.run()
            assert _fingerprint(results[run_id]) == events_fingerprints[3]

    def test_submit_order_is_result_order(self, workloads):
        sim = BatchSimulator(batch_size=4)
        ids = [sim.submit(c, t, iterations=ITER) for c, t in workloads]
        assert ids == list(range(len(workloads)))
        results = sim.run()
        assert len(results) == len(workloads)
        for (c, _), result in zip(workloads, results):
            assert result.ii == c.schedule.ii
            assert result.iterations == ITER


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_batch_diagnostics_set_but_not_serialized(self, workloads):
        results = simulate_batch(workloads[:3], iterations=ITER,
                                 batch_size=3)
        for result in results:
            assert result.stats.batch_size == 3
            assert 0 < result.stats.batch_steps
            payload = result.stats.to_dict()
            assert "batch_size" not in payload
            assert "batch_steps" not in payload
            roundtrip = SimStats.from_dict(payload)
            assert roundtrip.batch_size == 0

    def test_events_engine_leaves_diagnostics_zero(self, workloads):
        c, t = workloads[0]
        result = simulate(c, t, iterations=ITER, engine="events")
        assert result.stats.batch_size == 0
        assert result.stats.batch_steps == 0

    def test_soa_snapshot_tracks_progress(self, workloads):
        sim = BatchSimulator(batch_size=4)
        for c, t in workloads[:4]:
            sim.submit(c, t, iterations=ITER)
        results = sim.run()
        snap = sim.snapshot()
        # The SoA cycle is the run's final simulated cycle, which may
        # sit past total_cycles by the memory-drain tail.
        for final, result in zip(snap["cycles"], results):
            assert final >= result.stats.total_cycles
        assert all(steps > 0 for steps in snap["steps"])


# ----------------------------------------------------------------------
# Compat stepper: substituted MemorySystem still equivalent
# ----------------------------------------------------------------------
class TestCompatStepper:
    def test_subclassed_memory_system_matches_flat(
        self, workloads, events_fingerprints, monkeypatch
    ):
        class TracingMemorySystem(MemorySystem):
            ticks = 0

            def tick_begin(self, cycle):
                TracingMemorySystem.ticks += 1
                super().tick_begin(cycle)

        monkeypatch.setattr(executor_mod, "MemorySystem",
                            TracingMemorySystem)
        results = simulate_batch(workloads[:2], iterations=ITER,
                                 batch_size=2)
        assert [_fingerprint(r) for r in results] \
            == events_fingerprints[:2]
        assert TracingMemorySystem.ticks > 0


# ----------------------------------------------------------------------
# Errors and validation
# ----------------------------------------------------------------------
class _BoomTrace:
    """TraceLike double whose address stream fails mid-run."""

    def __init__(self, inner):
        self._inner = inner
        self.num_iterations = inner.num_iterations

    def address(self, iid, iteration):
        raise RuntimeError("boom")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestErrors:
    def test_batch_size_validation(self):
        with pytest.raises(SimulationError, match="batch_size"):
            BatchSimulator(batch_size=0)

    def test_unknown_engine(self, workloads):
        c, t = workloads[0]
        with pytest.raises(SimulationError, match="unknown simulation "
                                                  "engine"):
            simulate(c, t, iterations=ITER, engine="warp")
        with pytest.raises(SimulationError, match="unknown simulation "
                                                  "engine"):
            Runner(engine="warp")

    def test_iteration_validation_at_submit(self, workloads):
        c, t = workloads[0]
        sim = BatchSimulator()
        with pytest.raises(SimulationError, match="at least one"):
            sim.submit(c, t, iterations=0)
        with pytest.raises(SimulationError, match="provides"):
            sim.submit(c, t, iterations=ITER + 1)

    def test_capture_errors_isolates_failures(self, workloads,
                                              events_fingerprints):
        c, t = workloads[0]
        sim = BatchSimulator(batch_size=4)
        sim.submit(c, _BoomTrace(t), iterations=ITER)
        sim.submit(*workloads[1], iterations=ITER)
        results = sim.run(capture_errors=True)
        assert isinstance(results[0], RuntimeError)
        assert _fingerprint(results[1]) == events_fingerprints[1]

    def test_errors_raise_by_default(self, workloads):
        c, t = workloads[0]
        sim = BatchSimulator(batch_size=2)
        sim.submit(c, _BoomTrace(t), iterations=ITER)
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()


# ----------------------------------------------------------------------
# Record-level plumbing: core + runner
# ----------------------------------------------------------------------
SPECS = [
    RunSpec(benchmark="epicdec", variant="none/mincoms", scale=0.05),
    RunSpec(benchmark="epicdec", variant="mdc/prefclus", scale=0.05),
    RunSpec(benchmark="g721dec", variant="mdc/mincoms", scale=0.05),
]


def _quiet(fn, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return fn(*args, **kwargs)


class TestRecordPlumbing:
    @pytest.fixture(scope="class")
    def per_spec_records(self):
        artifacts = MemoryArtifactStore()
        return [
            _quiet(execute_spec, spec, artifacts=artifacts).to_dict()
            for spec in SPECS
        ]

    def test_execute_specs_batch_matches_execute_spec(
        self, per_spec_records
    ):
        artifacts = MemoryArtifactStore()
        records = _quiet(execute_specs_batch, SPECS,
                         artifacts=artifacts, batch_size=2)
        assert [r.to_dict() for r in records] == per_spec_records

    @pytest.mark.parametrize("parallel", [None, 2])
    def test_runner_engine_batch_matches_events(
        self, per_spec_records, parallel
    ):
        runner = Runner(store=MemoryStore(),
                        artifacts=MemoryArtifactStore(),
                        engine="batch", batch_size=2, parallel=parallel)
        records = _quiet(runner.run, Plan(tuple(SPECS)))
        assert [r.to_dict() for r in records] == per_spec_records

    def test_runner_rejects_bad_batch_size(self):
        with pytest.raises(SimulationError, match="batch_size"):
            Runner(engine="batch", batch_size=0)
