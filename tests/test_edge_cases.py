"""Boundary inputs the pipeline and simulator must handle gracefully:
zero-iteration runs, single-node graphs, and a loop whose achieved II
sits exactly on the resource lower bound."""

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.errors import SimulationError
from repro.ir import DdgBuilder
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sched.mii import minimum_ii, rec_mii, res_mii
from repro.sim import simulate
from repro.workloads import trace_factory


def compiled(ddg, **kwargs):
    defaults = dict(
        coherence=CoherenceMode.NONE,
        heuristic=Heuristic.MINCOMS,
        trace_factory=trace_factory(64, seed=1),
        unroll_factor=1,
    )
    defaults.update(kwargs)
    return compile_loop(ddg, BASELINE_CONFIG, **defaults)


def all_variants():
    return [
        (coh, heur)
        for coh in CoherenceMode
        for heur in (Heuristic.PREFCLUS, Heuristic.MINCOMS)
    ]


class TestZeroIterations:
    """A loop that never runs is a spec error, not a hang or a crash."""

    @pytest.fixture(scope="class")
    def result(self):
        b = DdgBuilder("zero")
        b.load("x", mem=MemRef("A", stride=4), name="ld")
        b.ialu("y", "x", name="use")
        return compiled(b.build())

    @pytest.mark.parametrize("engine", ["events", "cycles"])
    def test_zero_iterations_raise_cleanly(self, result, engine):
        trace = trace_factory(16, seed=2)(result.ddg)
        with pytest.raises(SimulationError, match="at least one iteration"):
            simulate(result, trace, iterations=0, engine=engine)

    def test_negative_iterations_raise_cleanly(self, result):
        trace = trace_factory(16, seed=2)(result.ddg)
        with pytest.raises(SimulationError, match="at least one iteration"):
            simulate(result, trace, iterations=-3)


class TestSingleNodeDdg:
    @pytest.mark.parametrize("coherence,heuristic", all_variants())
    def test_single_store_compiles_everywhere(self, coherence, heuristic):
        b = DdgBuilder("one-store")
        b.store(mem=MemRef("A", stride=4), name="st")
        result = compiled(
            b.build(), coherence=coherence, heuristic=heuristic
        )
        result.schedule.validate()
        assert result.ii >= 1
        # Only the store (plus any coherence replicas) is scheduled.
        assert len(result.schedule.ops) >= 1

    def test_single_compute_op_schedules_at_ii_one(self):
        b = DdgBuilder("one-op")
        b.ialu("i", b.carried("i", 1), name="inc")
        result = compiled(b.build())
        result.schedule.validate()
        assert result.ii == 1
        assert len(result.schedule.ops) == 1

    def test_single_node_simulates(self):
        b = DdgBuilder("one-load")
        b.load("x", mem=MemRef("A", stride=4), name="ld")
        result = compiled(b.build())
        trace = trace_factory(8, seed=2)(result.ddg)
        sim = simulate(result, trace, iterations=8)
        assert sim.stats.issued_ops == 8


class TestExactResourceBound:
    """Nine independent INT ops on four 1-INT-unit clusters: ResMII is
    ceil(9/4) = 3 and nothing else constrains, so the scheduler must
    land on II == ResMII exactly."""

    def build(self):
        b = DdgBuilder("packed")
        for i in range(9):
            b.ialu(f"x{i}", b.carried(f"x{i}", 1), name=f"op{i}")
        return b.build()

    def test_ii_equals_res_mii_exactly(self):
        result = compiled(self.build())
        machine = result.machine
        assert res_mii(result.ddg, machine) == 3
        assert rec_mii(result.ddg, machine) < 3
        assert minimum_ii(result.ddg, machine) == 3
        assert result.ii == 3

    def test_no_slack_in_the_reservation_table(self):
        # With II == ResMII every (slot, unit) of the bounding FU kind
        # is busy except the padding of the last slot.
        result = compiled(self.build())
        by_slot = {}
        for op in result.schedule.ops.values():
            slot = op.time % result.ii
            by_slot[slot] = by_slot.get(slot, 0) + 1
        assert sum(by_slot.values()) == 9
        assert all(count <= 4 for count in by_slot.values())
