"""DDG-transformation tests: the paper's Figure 3 -> Figure 5 walkthrough.

Section 3.3 spells out exactly what ``transform_DDG`` must produce on the
example graph; these tests verify every claim:

* n3 and n4 are replicated 3 times (4 clusters), one instance per cluster;
* the MA dependence n1->n4 is redundant (covered by the RF n1->n4) and
  disappears;
* the MA dependence n1->n3 needs a *fake consumer* (NEW_CONS), because
  n1's only consumer (n4) is a memory instruction sequentially posterior
  to and dependent on n3;
* the MA dependences from n2 become SYNC edges from n5 (the consumer);
* no MA edge survives, self MO edges are not replicated, and memory
  dependences between the two replicated stores are mapped instance-wise.
"""

import pytest

from repro.arch import BASELINE_CONFIG
from repro.errors import TransformError
from repro.ir import DepKind, Opcode, verify_ddg
from repro.sched import apply_ddgt


@pytest.fixture
def transformed(figure3):
    ddg, nodes = figure3
    result = apply_ddgt(ddg, BASELINE_CONFIG)
    return ddg, nodes, result


class TestStoreReplication:
    def test_both_stores_replicated(self, transformed):
        _, nodes, result = transformed
        assert set(result.replicas) == {nodes["n3"].iid, nodes["n4"].iid}
        assert result.instance_count == 8  # 2 stores x 4 clusters

    def test_one_instance_per_cluster(self, transformed):
        _, nodes, result = transformed
        for original, instances in result.replicas.items():
            clusters = [
                result.ddg.node(iid).required_cluster for iid in instances
            ]
            assert sorted(clusters) == [0, 1, 2, 3]

    def test_instances_share_seq_and_memref(self, transformed):
        _, nodes, result = transformed
        for original, instances in result.replicas.items():
            base = result.ddg.node(original)
            for iid in instances:
                inst = result.ddg.node(iid)
                assert inst.seq == base.seq
                assert inst.mem is base.mem
                assert inst.replica_group == original

    def test_input_rf_edges_fanned_out(self, transformed):
        _, nodes, result = transformed
        # n4 stores n1's value: every instance must receive it.
        for iid in result.replicas[nodes["n4"].iid]:
            rf = [e for e in result.ddg.preds(iid) if e.kind is DepKind.RF]
            assert any(e.src == nodes["n1"].iid for e in rf)

    def test_self_mo_not_replicated(self, transformed):
        _, nodes, result = transformed
        ddg = result.ddg
        for instances in result.replicas.values():
            for iid in instances[1:]:  # new instances only
                assert not any(
                    e.src == e.dst for e in ddg.succs(iid)
                ), "self MO must not be copied onto instances"

    def test_store_store_edges_instance_wise(self, transformed):
        _, nodes, result = transformed
        ddg = result.ddg
        n3_instances = result.replicas[nodes["n3"].iid]
        n4_instances = result.replicas[nodes["n4"].iid]
        for k, (a, b) in enumerate(zip(n3_instances, n4_instances)):
            # Same-cluster instances are ordered: MO n3.k -> n4.k (d0).
            assert ddg.has_edge(a, b, DepKind.MO)
        # No cross-cluster instance MO pairs beyond the instance-wise ones.
        for i, a in enumerate(n3_instances):
            for j, b in enumerate(n4_instances):
                if i != j:
                    assert not ddg.has_edge(a, b, DepKind.MO)


class TestLoadStoreSynchronization:
    def test_no_ma_edges_survive(self, transformed):
        _, _, result = transformed
        assert all(e.kind is not DepKind.MA for e in result.ddg.edges())

    def test_redundant_ma_removed_without_sync(self, transformed):
        _, nodes, result = transformed
        # n1->n4 was covered by RF n1->n4: counted redundant (one per
        # instance of n4).
        assert result.redundant_ma == 4

    def test_fake_consumer_created_for_n1_n3(self, transformed):
        _, nodes, result = transformed
        ddg = result.ddg
        assert len(result.fake_consumers) == 1
        fake = ddg.node(result.fake_consumers[0])
        assert fake.opcode is Opcode.FAKE
        # It reads the load's value...
        assert ddg.has_edge(nodes["n1"].iid, fake.iid, DepKind.RF)
        # ...and synchronizes every instance of n3.
        for iid in result.replicas[nodes["n3"].iid]:
            assert ddg.has_edge(fake.iid, iid, DepKind.SYNC)

    def test_n5_synchronizes_n3_and_n4(self, transformed):
        _, nodes, result = transformed
        ddg = result.ddg
        for store in ("n3", "n4"):
            for iid in result.replicas[nodes[store].iid]:
                assert ddg.has_edge(nodes["n5"].iid, iid, DepKind.SYNC)

    def test_transformed_graph_is_valid(self, transformed):
        _, _, result = transformed
        verify_ddg(result.ddg, BASELINE_CONFIG)

    def test_original_graph_untouched(self, figure3):
        ddg, _ = figure3
        before_nodes = len(ddg)
        before_edges = len(ddg.edges())
        apply_ddgt(ddg, BASELINE_CONFIG)
        assert len(ddg) == before_nodes
        assert len(ddg.edges()) == before_edges


class TestEdgeCases:
    def test_independent_stores_not_replicated(self, stream_loop):
        result = apply_ddgt(stream_loop, BASELINE_CONFIG)
        assert result.replicas == {}
        assert len(result.ddg) == len(stream_loop)

    def test_store_with_only_self_dependence_not_replicated(self):
        from repro.alias import MemRef
        from repro.ir import DdgBuilder

        b = DdgBuilder()
        st = b.store(mem=MemRef("A", stride=0), name="st")
        ddg = b.build()
        ddg.add_edge(st.iid, st.iid, DepKind.MO, 1)
        result = apply_ddgt(ddg, BASELINE_CONFIG)
        assert result.replicas == {}

    def test_ma_with_loadless_consumer_uses_fake(self):
        """A load with no register consumers at all gets a fake consumer."""
        from repro.alias import MemRef
        from repro.ir import DdgBuilder

        b = DdgBuilder()
        load = b.load("x", mem=MemRef("A"), name="ld")
        store = b.store(mem=MemRef("A"), name="st")
        b.mem_dep(load, store, DepKind.MA, 0)
        ddg = b.build()
        result = apply_ddgt(ddg, BASELINE_CONFIG)
        assert len(result.fake_consumers) == 1
        fake = result.fake_consumers[0]
        for iid in result.replicas[store.iid]:
            assert result.ddg.has_edge(fake, iid, DepKind.SYNC)
