"""Memory model tests: MemRef, disambiguation, profiling."""

import pytest

from repro.alias import (
    AccessPattern,
    MemRef,
    add_memory_dependences,
    may_alias,
    remove_memory_dependences,
)
from repro.alias.disambiguation import _affine_distances
from repro.alias.profiles import ClusterProfile, profile_preferred_clusters
from repro.arch import BASELINE_CONFIG
from repro.errors import ConfigError, WorkloadError
from repro.ir import DdgBuilder, DepKind, Edge
from repro.workloads import trace_factory


class TestMemRef:
    def test_affine_address(self):
        ref = MemRef("A", offset=8, stride=4)
        assert ref.address(1000, 0) == 1008
        assert ref.address(1000, 5) == 1028

    def test_width_validation(self):
        with pytest.raises(ConfigError):
            MemRef("A", width=3)

    def test_indirect_needs_spread(self):
        with pytest.raises(ConfigError):
            MemRef("A", pattern=AccessPattern.INDIRECT, spread=0)

    def test_shifted(self):
        ref = MemRef("A", offset=4, stride=4).shifted(8, 4)
        assert ref.offset == 12 and ref.stride == 16

    def test_footprint(self):
        ref = MemRef("A", offset=0, stride=4, width=4)
        assert ref.footprint(10) == range(0, 40)


class TestMayAlias:
    def test_different_spaces_never_alias(self):
        assert not may_alias(MemRef("A"), MemRef("B", ambiguous=True))

    def test_ambiguous_always_aliases_same_space(self):
        assert may_alias(MemRef("A", ambiguous=True), MemRef("A", offset=999))

    def test_disjoint_equal_stride_streams(self):
        a = MemRef("A", offset=0, stride=16, width=4)
        b = MemRef("A", offset=4, stride=16, width=4)
        assert not may_alias(a, b)

    def test_same_stream_shifted_by_stride(self):
        a = MemRef("A", offset=0, stride=16, width=4)
        b = MemRef("A", offset=16, stride=16, width=4)
        assert may_alias(a, b)


class TestAffineDistances:
    def test_same_iteration_collision(self):
        a = MemRef("A", offset=0, stride=8, width=4)
        b = MemRef("A", offset=0, stride=8, width=4)
        assert _affine_distances(a, b, 4) == [0]

    def test_carried_collision_direction(self):
        # b reads one stride ahead of a: a@(j+1) hits b@j -> k = +1.
        a = MemRef("A", offset=0, stride=8, width=4)
        b = MemRef("A", offset=8, stride=8, width=4)
        assert _affine_distances(a, b, 4) == [1]

    def test_horizon_cuts_far_dependences(self):
        a = MemRef("A", offset=0, stride=8, width=4)
        b = MemRef("A", offset=80, stride=8, width=4)  # 10 strides away
        assert _affine_distances(a, b, 4) == []


class TestAddMemoryDependences:
    def test_stencil_direction_regression(self):
        """A store feeding next iteration's load must produce an MF edge
        *from the store to the load* (regression for a swapped-direction
        bug that made every mode read stale values)."""
        b = DdgBuilder()
        load = b.load("x", mem=MemRef("L", offset=0, stride=4), name="ld")
        b.ialu("y", "x", name="f")
        store = b.store("y", mem=MemRef("L", offset=4, stride=4), name="st")
        ddg = b.build()
        add_memory_dependences(ddg)
        mf = [e for e in ddg.edges() if e.kind is DepKind.MF]
        assert mf == [Edge(store.iid, load.iid, DepKind.MF, 1)]
        ma = [e for e in ddg.edges() if e.kind is DepKind.MA]
        # load@j reads what store@j-? ... check the anti direction exists
        # with the right endpoints whenever present.
        for e in ma:
            assert ddg.node(e.src).is_load and ddg.node(e.dst).is_store

    def test_load_load_pairs_ignored(self):
        b = DdgBuilder()
        b.load("x", mem=MemRef("A", offset=0, stride=4), name="l1")
        b.load("y", mem=MemRef("A", offset=0, stride=4), name="l2")
        ddg = b.build()
        assert add_memory_dependences(ddg) == 0

    def test_ambiguous_store_gets_self_mo(self):
        b = DdgBuilder()
        b.store(mem=MemRef("A", ambiguous=True), name="st")
        ddg = b.build()
        add_memory_dependences(ddg)
        self_edges = [e for e in ddg.edges() if e.src == e.dst]
        assert len(self_edges) == 1
        assert self_edges[0].kind is DepKind.MO
        assert self_edges[0].distance == 1

    def test_ambiguous_pair_fully_serialized(self):
        b = DdgBuilder()
        load = b.load("x", mem=MemRef("A", offset=0, stride=4,
                                      ambiguous=True), name="ld")
        store = b.store(mem=MemRef("A", offset=400, stride=4), name="st")
        ddg = b.build()
        add_memory_dependences(ddg)
        kinds = {(e.src, e.dst, e.kind, e.distance) for e in ddg.edges()}
        assert (load.iid, store.iid, DepKind.MA, 0) in kinds
        assert (store.iid, load.iid, DepKind.MF, 1) in kinds

    def test_invariant_store_self_dependence(self):
        b = DdgBuilder()
        b.store(mem=MemRef("A", stride=0), name="st")
        ddg = b.build()
        add_memory_dependences(ddg)
        assert any(e.src == e.dst and e.kind is DepKind.MO
                   for e in ddg.edges())

    def test_remove_only_ambiguous(self):
        b = DdgBuilder()
        l1 = b.load("x", mem=MemRef("A", offset=4, stride=4), name="l1")
        s1 = b.store("x", mem=MemRef("A", offset=0, stride=4), name="s1")
        l2 = b.load("y", mem=MemRef("B", ambiguous=True), name="l2")
        s2 = b.store("y", mem=MemRef("B", ambiguous=True), name="s2")
        ddg = b.build()
        add_memory_dependences(ddg)
        total = len(ddg.memory_edges())
        removed = remove_memory_dependences(ddg, only_ambiguous=True)
        assert removed > 0
        remaining = ddg.memory_edges()
        assert len(remaining) == total - removed
        assert all(
            not ddg.node(e.src).mem.ambiguous
            and not ddg.node(e.dst).mem.ambiguous
            for e in remaining
        )


class TestProfiles:
    def test_profile_counts_home_clusters(self, stream_loop):
        trace = trace_factory(64, seed=1)(stream_loop)
        profiles = profile_preferred_clusters(
            stream_loop, trace, BASELINE_CONFIG
        )
        assert len(profiles) == 3  # two loads + one store
        for profile in profiles.values():
            assert profile.total == 64
            assert len(profile.counts) == 4

    def test_single_home_stream_prefers_one_cluster(self):
        b = DdgBuilder()
        b.load("x", mem=MemRef("A", stride=16), name="ld")  # lane stride
        ddg = b.build()
        trace = trace_factory(32, seed=1)(ddg)
        profiles = profile_preferred_clusters(ddg, trace, BASELINE_CONFIG)
        profile = next(iter(profiles.values()))
        assert max(profile.counts) == 32  # all accesses in one cluster
        assert profile.fraction(profile.preferred) == 1.0

    def test_combine(self):
        a = ClusterProfile((10, 0, 0, 0))
        b = ClusterProfile((0, 30, 0, 0))
        combined = ClusterProfile.combine([a, b])
        assert combined.counts == (10, 30, 0, 0)
        assert combined.preferred == 1

    def test_combine_empty_raises(self):
        with pytest.raises(WorkloadError):
            ClusterProfile.combine([])

    def test_combine_mismatched_raises(self):
        with pytest.raises(WorkloadError):
            ClusterProfile.combine([
                ClusterProfile((1, 2)), ClusterProfile((1, 2, 3))
            ])
