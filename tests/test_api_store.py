"""ResultStore implementations: hit/miss, version invalidation, defaults."""

import json

import pytest

from repro.api.records import LoopRecord, RunRecord
from repro.api.store import (
    DiskStore,
    MemoryStore,
    default_store,
    set_default_store,
)
from repro.sim.stats import SimStats


def make_record(benchmark="gsmdec", cycles=100) -> RunRecord:
    stats = SimStats()
    stats.compute_cycles = cycles
    loop = LoopRecord(
        benchmark=benchmark, loop=f"{benchmark}.l0", variant="mdc/prefclus",
        ii=3, unroll=2, kernel_iterations=64, compute_cycles=cycles,
        stall_cycles=7, stats=stats, violations=0, static_copies=2,
        replicated_instances=0, fake_consumers=0,
    )
    return RunRecord(benchmark=benchmark, variant="mdc/prefclus",
                     scale=0.1, spec_key="k", loops=[loop])


class TestMemoryStore:
    def test_miss_then_hit(self):
        store = MemoryStore()
        assert store.get("k") is None
        record = make_record()
        store.put("k", record)
        assert store.get("k") is record
        assert "k" in store
        assert len(store) == 1

    def test_clear_returns_count(self):
        store = MemoryStore()
        store.put("a", make_record())
        store.put("b", make_record())
        assert store.clear() == 2
        assert store.get("a") is None


class TestDiskStore:
    def test_roundtrip_across_instances(self, tmp_path):
        record = make_record(cycles=123)
        DiskStore(tmp_path).put("key1", record)
        # A brand-new store instance (as in a second process) must hit.
        fetched = DiskStore(tmp_path).get("key1")
        assert fetched is not None
        assert fetched.to_dict() == record.to_dict()
        assert fetched.loops[0].compute_cycles == 123

    def test_version_bump_invalidates(self, tmp_path):
        DiskStore(tmp_path, version="1.0.0").put("key1", make_record())
        old = DiskStore(tmp_path, version="1.0.0")
        assert old.get("key1") is not None
        bumped = DiskStore(tmp_path, version="2.0.0")
        assert bumped.get("key1") is None
        # The stale file was dropped, so even the old version misses now.
        assert DiskStore(tmp_path, version="1.0.0").get("key1") is None

    def test_default_version_is_package_version(self, tmp_path):
        import repro

        store = DiskStore(tmp_path)
        assert store.version == repro.__version__
        store.put("key1", make_record())
        payload = json.loads(store.entry_path("key1").read_text())
        assert payload["version"] == repro.__version__

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        assert DiskStore(tmp_path).get("bad") is None

    def test_wrong_shape_entry_is_a_miss_and_removed(self, tmp_path):
        """Valid JSON of the wrong shape must self-heal, not crash."""
        import repro

        (tmp_path / "a.json").write_text("[1, 2, 3]")
        (tmp_path / "b.json").write_text(
            json.dumps({"version": repro.__version__})  # no 'record'
        )
        (tmp_path / "c.json").write_text(
            json.dumps({"version": repro.__version__, "record": {"loops": 3}})
        )
        store = DiskStore(tmp_path)
        for key in ("a", "b", "c"):
            assert store.get(key) is None
            assert not (tmp_path / f"{key}.json").exists(), key

    def test_clear_and_info(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("a", make_record())
        store.put("b", make_record())
        assert sorted(store.keys()) == ["a", "b"]
        assert store.size_bytes() > 0
        assert store.clear() == 2
        assert list(store.keys()) == []

    def test_prune_drops_old_entries_and_the_memo(self, tmp_path):
        import os
        import time

        store = DiskStore(tmp_path)
        store.put("old", make_record(cycles=1))
        store.put("new", make_record(cycles=2))
        assert store.get("old") is not None  # memoized
        stale = time.time() - 3600
        os.utime(store.entry_path("old"), (stale, stale))
        assert store.prune(older_than_seconds=60) == 1
        assert store.get("old") is None, "pruned entry must not be served"
        assert store.get("new") is not None
        assert sorted(store.keys()) == ["new"]

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        store = DiskStore()
        assert store.root == tmp_path / "envcache"


class TestDiskStoreConcurrencyHardening:
    def test_torn_read_retries_until_writer_finishes(self, tmp_path,
                                                     monkeypatch):
        """A partially-visible entry that completes while the reader
        retries must be served, not deleted."""
        record = make_record(cycles=55)
        writer = DiskStore(tmp_path)
        writer.put("key1", record)
        entry = writer.entry_path("key1")
        good = entry.read_text()
        entry.write_text(good[: len(good) // 2])

        reader = DiskStore(tmp_path)
        attempts = []
        original = DiskStore._read_payload

        def heal_then_read(self, path):
            def patched_sleep(_seconds):
                # The "writer" finishes its atomic rename mid-retry.
                entry.write_text(good)

            monkeypatch.setattr("repro.api.store.time.sleep", patched_sleep)
            attempts.append(path)
            return original(self, path)

        monkeypatch.setattr(DiskStore, "_read_payload", heal_then_read)
        fetched = reader.get("key1")
        assert fetched is not None
        assert fetched.loops[0].compute_cycles == 55
        assert entry.exists()

    def test_persistently_corrupt_entry_is_dropped(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr("repro.api.store.time.sleep", lambda _s: None)
        (tmp_path / "bad.json").write_text("{torn")
        assert DiskStore(tmp_path).get("bad") is None
        assert not (tmp_path / "bad.json").exists()

    def test_concurrent_writers_same_key_keep_store_readable(self, tmp_path):
        """Interleaved atomic puts of the same key never tear reads."""
        import threading

        stores = [DiskStore(tmp_path) for _ in range(4)]
        errors = []

        def hammer(store, cycles):
            try:
                for _ in range(25):
                    store.put("shared", make_record(cycles=cycles))
                    got = DiskStore(tmp_path).get("shared")
                    assert got is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(store, 100 + i))
            for i, store in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = DiskStore(tmp_path).get("shared")
        assert final is not None
        # No stray temp files survive the interleaved writes.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_size_bytes_tolerates_entries_vanishing_mid_scan(self, tmp_path):
        """``repro cache info``/``artifacts`` must not crash when a
        concurrent prune/clear deletes an entry between the glob and the
        stat.  A dangling symlink reproduces exactly that window: listed
        by the glob, gone by stat time."""
        store = DiskStore(tmp_path)
        store.put("a", make_record())
        store.put("b", make_record())
        intact = store.size_bytes()
        assert intact > 0
        (tmp_path / "vanished.json").symlink_to(tmp_path / "no-such-entry")
        assert store.size_bytes() == intact


class TestDefaultStore:
    def test_swap_and_restore(self):
        fresh = MemoryStore()
        previous = set_default_store(fresh)
        try:
            assert default_store() is fresh
        finally:
            set_default_store(previous)
        assert default_store() is previous


class TestLegacyClearCache:
    def test_clear_cache_clears_default_store(self):
        from repro.experiments.common import clear_cache

        previous = set_default_store(MemoryStore())
        try:
            default_store().put("k", make_record())
            with pytest.warns(DeprecationWarning):
                clear_cache()
            assert default_store().get("k") is None
        finally:
            set_default_store(previous)
