"""The static schedule verifier: clean on real compiler output, and each
rule fires on a targeted corruption of that output."""

from dataclasses import replace

import pytest

from repro.arch import BASELINE_CONFIG
from repro.check.schedule_lint import lint_compilation, lint_schedule
from repro.errors import CheckError
from repro.ir.edges import DepKind, MEMORY_DEP_KINDS
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.workloads import trace_factory


def compile_variant(ddg, coherence, heuristic=Heuristic.MINCOMS, **kw):
    return compile_loop(
        ddg,
        BASELINE_CONFIG,
        coherence=coherence,
        heuristic=heuristic,
        trace_factory=trace_factory(64, seed=3),
        **kw,
    )


def rules(findings):
    return {f.rule for f in findings}


class TestCleanOutput:
    @pytest.mark.parametrize("coherence", list(CoherenceMode))
    def test_compiler_output_lints_clean(self, stream_loop, coherence):
        result = compile_variant(stream_loop, coherence)
        assert lint_compilation(result) == []

    @pytest.mark.parametrize("coherence", list(CoherenceMode))
    def test_verify_stage_accepts_compiler_output(
        self, stream_loop, coherence
    ):
        result = compile_variant(stream_loop, coherence, verify=True)
        assert result.schedule.ops

    def test_verify_stage_raises_on_findings(self, stream_loop, monkeypatch):
        from repro.check import schedule_lint

        monkeypatch.setattr(
            schedule_lint, "lint_compilation",
            lambda result: [schedule_lint.LintFinding("resource", "boom")],
        )
        with pytest.raises(CheckError, match=r"1 finding\(s\)"):
            compile_variant(stream_loop, CoherenceMode.NONE, verify=True)


class TestCorruptions:
    """Each corruption edits the finished schedule behind the verifier's
    back; the matching rule must fire."""

    @pytest.fixture
    def result(self, stream_loop):
        return compile_variant(stream_loop, CoherenceMode.NONE)

    def test_missing_op_is_incomplete(self, result):
        schedule = result.schedule
        victim = next(iter(schedule.ops))
        del schedule.ops[victim]
        findings = lint_compilation(result)
        assert rules(findings) == {"completeness"}  # cascade stops here
        assert any(f.iid == victim for f in findings)

    def test_unknown_iid_is_incomplete(self, result):
        schedule = result.schedule
        any_op = next(iter(schedule.ops.values()))
        schedule.ops[9999] = replace(any_op, iid=9999)
        findings = lint_compilation(result)
        assert "completeness" in rules(findings)

    def test_assignment_disagreement_is_incomplete(self, result):
        schedule = result.schedule
        victim = next(iter(schedule.ops))
        placed = schedule.ops[victim]
        schedule.ops[victim] = replace(
            placed,
            cluster=(placed.cluster + 1) % result.machine.num_clusters,
        )
        findings = lint_compilation(result)
        assert "completeness" in rules(findings)

    def test_violated_latency_is_found(self, result):
        schedule = result.schedule
        edge = next(
            e for e in result.ddg.edges()
            if e.distance == 0 and e.src != e.dst
        )
        placed = schedule.ops[edge.dst]
        schedule.ops[edge.dst] = replace(
            placed, time=schedule.ops[edge.src].time - 100
        )
        findings = lint_schedule(
            result.ddg, result.machine, result.assignment, schedule
        )
        assert "latency" in rules(findings)

    def test_uncovered_cross_cluster_flow_is_found(self, result):
        # Move an RF producer-consumer pair apart, updating the
        # assignment consistently so completeness stays quiet.
        ddg = result.ddg
        schedule = result.schedule
        edge = next(
            e for e in ddg.edges()
            if e.kind is DepKind.RF
            and not ddg.node(e.src).is_copy and not ddg.node(e.dst).is_copy
        )
        placed = schedule.ops[edge.dst]
        other = (placed.cluster + 1) % result.machine.num_clusters
        schedule.ops[edge.dst] = replace(placed, cluster=other)
        result.assignment.cluster_of[edge.dst] = other
        findings = lint_compilation(result)
        assert "copies" in rules(findings)

    def test_resource_overcommit_is_found(self, result):
        # Pile every non-copy op of one FU kind onto one (cluster, slot).
        ddg = result.ddg
        schedule = result.schedule
        from collections import Counter

        kinds = Counter(
            ddg.node(iid).fu_kind
            for iid in schedule.ops if not ddg.node(iid).is_copy
        )
        kind = kinds.most_common(1)[0][0]
        for iid, placed in list(schedule.ops.items()):
            if ddg.node(iid).is_copy or ddg.node(iid).fu_kind is not kind:
                continue
            schedule.ops[iid] = replace(placed, cluster=0, time=0)
            result.assignment.cluster_of[iid] = 0
        findings = lint_compilation(result)
        assert "resource" in rules(findings)

    def test_split_mdc_chain_is_found(self, figure3):
        source, _ = figure3
        result = compile_variant(
            source, CoherenceMode.MDC, heuristic=Heuristic.PREFCLUS,
            unroll_factor=1, add_mem_deps=False,
        )
        ddg = result.ddg
        schedule = result.schedule
        edge = next(
            e for e in ddg.edges()
            if e.kind in MEMORY_DEP_KINDS and e.src != e.dst
        )
        placed = schedule.ops[edge.dst]
        other = (placed.cluster + 1) % result.machine.num_clusters
        schedule.ops[edge.dst] = replace(placed, cluster=other)
        result.assignment.cluster_of[edge.dst] = other
        findings = lint_compilation(result)
        assert "memory_order" in rules(findings)

    def test_findings_render_with_rule_tag(self, result):
        del result.schedule.ops[next(iter(result.schedule.ops))]
        finding = lint_compilation(result)[0]
        assert str(finding).startswith("[completeness]")
