"""The paper's Figure 2 / Figure 4 scenario, end to end.

Figure 2: a store scheduled in cluster 4 updates variable X homed in
cluster 1; an aliased load runs in cluster 1 shortly after.  The store's
bus transit is slower than the load's local access, so the load reads a
stale value — unless a coherence solution intervenes.

Figure 4: store replication places an instance in every cluster; the one
in X's home cluster executes (locally, immediately), so the load always
sees the new value.
"""

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.ir import DdgBuilder, DepKind
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import simulate
from repro.workloads import trace_factory
from repro.workloads.traces import AddressTrace

ITERATIONS = 128


def store_then_load(pin_store=None, pin_load=None, consumer=True):
    """store X; load X — aliased, same address every iteration.

    With ``consumer=False`` the loaded value is dead: stall-on-use then
    never delays the kernel, so the load really issues one cycle after the
    store — the tight Figure 2 timing.  (With a consumer, the stalls the
    remote loads themselves cause happen to stretch the store-to-load
    distance past the bus transit; the hazard then needs congested buses,
    which the property tests exercise.)
    """
    b = DdgBuilder("figure2")
    # "variable X": one hot location, updated and read every iteration
    # (stride 0 keeps the cache warm so the timing race is visible).
    ref = MemRef("X", stride=0, width=4, ambiguous=True)
    st = b.store(mem=ref, name="st")
    ld = b.load("v", mem=ref, name="ld")
    if consumer:
        b.ialu("c", "v", name="use")
    b.mem_dep(st, ld, DepKind.MF, 0)
    b.mem_dep(ld, st, DepKind.MA, 1)
    b.mem_dep(st, st, DepKind.MO, 1)
    ddg = b.build()
    if pin_store is not None:
        ddg.pin_cluster(st.iid, pin_store)
    if pin_load is not None:
        ddg.pin_cluster(ld.iid, pin_load)
    return ddg


def run(ddg, coherence, heuristic=Heuristic.MINCOMS):
    result = compile_loop(
        ddg,
        BASELINE_CONFIG,
        coherence=coherence,
        heuristic=heuristic,
        trace_factory=trace_factory(64, seed=5),
        unroll_factor=1,
        add_mem_deps=False,
    )
    trace = trace_factory(ITERATIONS, seed=6)(result.ddg)
    return simulate(result, trace, iterations=ITERATIONS)


class TestFigure2Violation:
    def test_cross_cluster_store_load_reads_stale(self):
        """The optimistic baseline with the store forced away from the
        load's cluster produces stale reads."""
        ddg = store_then_load(pin_store=3, pin_load=0, consumer=False)
        sim = run(ddg, CoherenceMode.NONE)
        assert sim.violations.total > 0
        assert sim.violations.stale_reads > 0

    def test_same_cluster_is_naturally_coherent(self):
        ddg = store_then_load(pin_store=0, pin_load=0, consumer=False)
        sim = run(ddg, CoherenceMode.NONE)
        assert sim.violations.total == 0

    def test_mdc_fixes_the_same_tight_timing(self):
        """Identical graph, MDC placement: zero violations."""
        ddg = store_then_load(consumer=False)
        sim = run(ddg, CoherenceMode.MDC)
        assert sim.violations.total == 0

    def test_ddgt_fixes_the_same_tight_timing(self):
        ddg = store_then_load(consumer=False)
        sim = run(ddg, CoherenceMode.DDGT)
        assert sim.violations.total == 0


class TestFigure4StoreReplication:
    def test_ddgt_eliminates_all_violations(self):
        ddg = store_then_load()  # unconstrained: DDGT must fix placement
        sim = run(ddg, CoherenceMode.DDGT)
        assert sim.violations.total == 0

    def test_ddgt_fixes_even_adversarial_pins(self):
        """Pins on the original store are overridden by replication (the
        local instance always exists)."""
        ddg = store_then_load(pin_load=0)
        sim = run(ddg, CoherenceMode.DDGT)
        assert sim.violations.total == 0

    def test_mdc_eliminates_all_violations(self):
        ddg = store_then_load()
        for heuristic in (Heuristic.MINCOMS, Heuristic.PREFCLUS):
            sim = run(ddg, CoherenceMode.MDC, heuristic)
            assert sim.violations.total == 0


class TestCheckerPrecision:
    def test_expected_versions_follow_program_order(self):
        from repro.sim.coherence import CoherenceChecker

        ddg = store_then_load()
        trace = AddressTrace(ddg, num_iterations=4, base_of={"X": 0})
        checker = CoherenceChecker(ddg, trace, 4)
        store = next(v for v in ddg if v.is_store)
        load = next(v for v in ddg if v.is_load)
        # load of iteration i must see the store of iteration i (same
        # address, store earlier in program order).
        for i in range(4):
            assert checker.expected(load.iid, i) == (i, store.seq)

    def test_observe_classification(self):
        from repro.sim.coherence import CoherenceChecker

        ddg = store_then_load()
        trace = AddressTrace(ddg, num_iterations=4, base_of={"X": 0})
        checker = CoherenceChecker(ddg, trace, 4)
        load = next(v for v in ddg if v.is_load)
        store = next(v for v in ddg if v.is_store)
        assert checker.observe_load(load.iid, 2, (1, store.seq))  # stale
        assert checker.counts.stale_reads == 1
        assert checker.observe_load(load.iid, 1, (3, store.seq))  # future
        assert checker.counts.future_reads == 1
        assert not checker.observe_load(load.iid, 3, (3, store.seq))
