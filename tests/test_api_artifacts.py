"""ArtifactStore implementations: ownership, counters, pruning, defaults."""

import json
import os
import time

import pytest

from repro.api.artifacts import (
    DiskArtifactStore,
    MemoryArtifactStore,
    artifact_root,
    artifact_stats,
    default_artifact_store,
    reset_artifact_stats,
    set_default_artifact_store,
)


@pytest.fixture(autouse=True)
def fresh_stats():
    reset_artifact_stats()
    yield
    reset_artifact_stats()


PAYLOAD = {"ddg": {"nodes": [1, 2, 3]}, "factor": 4}


class TestMemoryArtifactStore:
    def test_miss_then_hit(self):
        store = MemoryArtifactStore()
        assert store.get("unroll-abc") is None
        store.put("unroll-abc", PAYLOAD)
        assert store.get("unroll-abc") == PAYLOAD
        assert "unroll-abc" in store
        assert len(store) == 1
        assert store.clear() == 1
        assert store.get("unroll-abc") is None

    def test_get_returns_an_owned_copy(self):
        """Mutating a fetched payload must never poison the store."""
        store = MemoryArtifactStore()
        store.put("k", PAYLOAD)
        fetched = store.get("k")
        fetched["ddg"]["nodes"].append(999)
        assert store.get("k") == PAYLOAD

    def test_put_stores_a_snapshot_not_a_reference(self):
        store = MemoryArtifactStore()
        payload = {"factor": 1, "ddg": {"nodes": []}}
        store.put("k", payload)
        payload["factor"] = 99
        assert store.get("k")["factor"] == 1


class TestDiskArtifactStore:
    def test_roundtrip_across_instances(self, tmp_path):
        DiskArtifactStore(tmp_path).put("profile-k1", PAYLOAD)
        fetched = DiskArtifactStore(tmp_path).get("profile-k1")
        assert fetched == PAYLOAD

    def test_envelope_is_version_stamped(self, tmp_path):
        import repro

        store = DiskArtifactStore(tmp_path)
        store.put("k", PAYLOAD)
        envelope = json.loads(store.entry_path("k").read_text())
        assert envelope["version"] == repro.__version__
        assert envelope["artifact"] == PAYLOAD

    def test_version_bump_invalidates(self, tmp_path):
        old = DiskArtifactStore(tmp_path, version="1.0.0")
        old.put("k", PAYLOAD)
        assert DiskArtifactStore(tmp_path, version="2.0.0").get("k") is None
        assert not old.entry_path("k").exists()

    def test_memoized_reread(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("k", PAYLOAD)
        store.entry_path("k").unlink()
        # The in-process memo still serves (and returns a fresh copy).
        first = store.get("k")
        first["factor"] = -1
        assert store.get("k") == PAYLOAD

    def test_prune_by_age(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.put("old", PAYLOAD)
        store.put("new", PAYLOAD)
        stale = time.time() - 3600
        os.utime(store.entry_path("old"), (stale, stale))
        assert store.prune(older_than_seconds=60) == 1
        assert sorted(store.keys()) == ["new"]
        # The in-process memo must not resurrect the pruned entry.
        assert store.get("old") is None

    def test_default_root_is_artifacts_subdir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert DiskArtifactStore().root == tmp_path / "cache" / "artifacts"
        assert artifact_root() == tmp_path / "cache" / "artifacts"
        assert artifact_root("elsewhere") == (
            artifact_root("elsewhere")
        )


class TestCounters:
    def test_hit_miss_accounting_by_stage(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.get("unroll-a")          # miss
        store.put("unroll-a", PAYLOAD)
        store.get("unroll-a")          # hit
        store.get("profile-b")         # miss
        stats = artifact_stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.puts == 1
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.by_stage["unroll"] == [1, 1]
        assert stats.by_stage["profile"] == [0, 1]

    def test_counters_span_stores(self):
        a, b = MemoryArtifactStore(), MemoryArtifactStore()
        a.get("unroll-x")
        b.get("unroll-x")
        assert artifact_stats().misses == 2


class TestDefaultArtifactStore:
    def test_swap_and_restore(self):
        fresh = MemoryArtifactStore()
        previous = set_default_artifact_store(fresh)
        try:
            assert default_artifact_store() is fresh
        finally:
            set_default_artifact_store(previous)
        assert default_artifact_store() is previous
