"""`repro.bench`: grid configs, trajectory emission, regression compare."""

import json

import pytest

from repro import bench
from repro.api.cli import main
from repro.bench.grid import GridConfig, run_series
from repro.errors import WorkloadError

TINY_GRID = {
    "name": "tiny",
    "repeat": 1,
    "series": [{
        "key": "one",
        "benchmarks": ["gsmdec"],
        "variants": ["mdc/prefclus"],
        "machines": ["baseline"],
        "scale": 0.05,
    }],
}


def _series_cell(wall=1.0, cps=100.0, frontend=0.5, specs=1,
                 cycles=1000, ops=500, dig="abc"):
    return {
        "wall_seconds": wall, "cycles_per_second": cps,
        "frontend_seconds": frontend, "specs": specs,
        "total_cycles": cycles, "issued_ops": ops,
        "records_digest": dig,
    }


def _trajectory(**series):
    return {"schema": 1, "grid": "t", "repeat": 1, "series": series}


class TestGridConfig:
    def test_parses_series_with_defaults(self):
        config = GridConfig.from_dict(TINY_GRID)
        assert config.name == "tiny"
        assert config.repeat == 1
        (series,) = config.series
        assert series.key == "one"
        assert series.plan()  # resolvable into a non-empty Plan

    def test_scenario_sampler_resolves_at_parse_time(self):
        data = {
            "name": "s",
            "series": [{
                "key": "sampled",
                "scenarios": {"seed": 3, "count": 2,
                              "families": ["gather"]},
            }],
        }
        first = GridConfig.from_dict(data).series[0].benchmarks
        second = GridConfig.from_dict(data).series[0].benchmarks
        assert len(first) == 2
        assert first == second  # seeded: a pure function of the config
        assert all(name.startswith("scn-") for name in first)

    @pytest.mark.parametrize("broken", [
        {},  # no name/series
        {"name": "x", "series": []},  # empty
        {"name": "x", "series": [{"key": "a"}]},  # no benchmarks/sampler
        {"name": "x", "series": [  # duplicate keys
            {"key": "a", "benchmarks": ["gsmdec"]},
            {"key": "a", "benchmarks": ["g721dec"]},
        ]},
    ])
    def test_malformed_configs_raise_workload_error(self, broken):
        with pytest.raises(WorkloadError):
            GridConfig.from_dict(broken)

    def test_load_rejects_missing_and_non_json_files(self, tmp_path):
        with pytest.raises(WorkloadError):
            GridConfig.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(WorkloadError):
            GridConfig.load(bad)

    def test_default_grid_config_is_valid(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        config = GridConfig.load(repo / "benchmarks/grids/default.json")
        assert config.name == "default"
        assert len(config.series) >= 3


class TestRunSeries:
    def test_deterministic_fields_are_reproducible(self):
        series = GridConfig.from_dict(TINY_GRID).series[0]
        first = run_series(series, repeat=1)
        second = run_series(series, repeat=1)
        for name in bench.grid.DETERMINISTIC_FIELDS:
            assert first[name] == second[name], name
        assert first["specs"] == 1
        assert first["total_cycles"] > 0
        assert first["wall_seconds"] > 0


class TestEmission:
    def test_write_load_round_trip_and_csv(self, tmp_path):
        trajectory = _trajectory(one=_series_cell())
        trajectory["grid"] = "tiny"
        paths = bench.write_trajectory(trajectory, tmp_path)
        assert paths["json"].name == "BENCH_tiny.json"
        assert bench.load_trajectory(paths["json"]) == trajectory
        lines = paths["csv"].read_text().splitlines()
        assert lines[0].startswith("series,wall_seconds")
        assert lines[1].startswith("one,1.000000")

    def test_load_rejects_non_trajectory_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2]")
        with pytest.raises(WorkloadError):
            bench.load_trajectory(path)

    def test_render_mentions_every_series(self):
        text = bench.render(_trajectory(one=_series_cell(),
                                        two=_series_cell()))
        assert "one" in text and "two" in text


class TestCompare:
    def test_identical_trajectories_are_clean(self):
        t = _trajectory(one=_series_cell())
        result = bench.compare(t, t)
        assert result.ok
        assert not result.notes and not result.improvements

    def test_injected_slowdown_is_a_regression(self):
        prev = _trajectory(one=_series_cell(wall=1.0))
        cur = _trajectory(one=_series_cell(wall=1.5))
        result = bench.compare(cur, prev, threshold=0.15)
        assert not result.ok
        assert "one.wall_seconds" in result.regressions[0]
        assert "+50.0%" in result.regressions[0]

    def test_threshold_absorbs_small_noise(self):
        prev = _trajectory(one=_series_cell(wall=1.0))
        cur = _trajectory(one=_series_cell(wall=1.1))
        assert bench.compare(cur, prev, threshold=0.15).ok

    def test_throughput_drop_is_a_regression_speedup_an_improvement(self):
        prev = _trajectory(one=_series_cell(cps=100.0))
        drop = bench.compare(_trajectory(one=_series_cell(cps=50.0)), prev)
        assert any("cycles_per_second" in r for r in drop.regressions)
        fast = bench.compare(
            _trajectory(one=_series_cell(wall=0.5, cps=100.0)),
            _trajectory(one=_series_cell(wall=1.0, cps=100.0)))
        assert fast.ok and fast.improvements

    def test_missing_series_is_a_regression_new_series_a_note(self):
        prev = _trajectory(one=_series_cell())
        cur = _trajectory(two=_series_cell())
        result = bench.compare(cur, prev)
        assert any("disappeared" in r for r in result.regressions)
        assert any("new series" in n for n in result.notes)

    def test_deterministic_drift_is_a_note_not_a_failure(self):
        prev = _trajectory(one=_series_cell(cycles=1000))
        cur = _trajectory(one=_series_cell(cycles=2000))
        result = bench.compare(cur, prev)
        assert result.ok
        assert any("total_cycles" in n for n in result.notes)

    def test_sub_epsilon_timings_are_ignored(self):
        prev = _trajectory(one=_series_cell(wall=1e-4, frontend=1e-4))
        cur = _trajectory(one=_series_cell(wall=9e-4, frontend=9e-4))
        assert bench.compare(cur, prev).ok


class TestCli:
    @pytest.fixture
    def grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(TINY_GRID))
        return path

    def test_bench_run_emits_trajectory_and_csv(self, tmp_path,
                                                grid_file, capsys):
        rc = main(["bench", "run", "--grid", str(grid_file),
                   "--repeat", "1", "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench grid tiny" in out
        bench_json = tmp_path / "BENCH_tiny.json"
        assert bench_json.exists()
        assert (tmp_path / "BENCH_tiny.csv").exists()
        trajectory = json.loads(bench_json.read_text())
        assert trajectory["schema"] == bench.BENCH_SCHEMA
        assert trajectory["series"]["one"]["specs"] == 1

    def test_bench_compare_fails_on_injected_slowdown(self, tmp_path,
                                                      grid_file, capsys):
        main(["bench", "run", "--grid", str(grid_file),
              "--repeat", "1", "--out-dir", str(tmp_path)])
        capsys.readouterr()
        current = tmp_path / "BENCH_tiny.json"

        # Same file against itself: clean.
        assert main(["bench", "compare", str(current),
                     "--against", str(current)]) == 0
        assert "no regressions" in capsys.readouterr().out

        # Inject a 2x slowdown into a copy of the previous trajectory —
        # i.e. the current run is 2x slower than it.
        slowed = json.loads(current.read_text())
        slowed["series"]["one"]["wall_seconds"] /= 2.0
        slowed["series"]["one"]["cycles_per_second"] *= 2.0
        previous = tmp_path / "BENCH_prev.json"
        previous.write_text(json.dumps(slowed))
        rc = main(["bench", "compare", str(current),
                   "--against", str(previous)])
        assert rc == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_bench_compare_missing_file_is_a_clean_error(self, tmp_path,
                                                         capsys):
        rc = main(["bench", "compare", str(tmp_path / "nope.json"),
                   "--against", str(tmp_path / "nope2.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_verbs_reject_bad_files(self, tmp_path, capsys):
        assert main(["obs", "trace", str(tmp_path / "no.json")]) == 2
        assert main(["obs", "metrics", str(tmp_path / "no.json")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err
