"""The ``repro.surrogate`` subsystem: featurizer, learned cost model,
frontier guide, model artifacts, guided sweeps and the CLI verbs.

The differential-validation class is the load-bearing one: it proves on
a seeded 64-cell space that a guided sweep can never *invent* an
anomaly — every anomaly it reports is backed by a real simulation and
is one the exhaustive sweep reports too.
"""

from __future__ import annotations

import json

import pytest

from repro.api.artifacts import MemoryArtifactStore
from repro.api.cli import main
from repro.api.runner import Runner
from repro.api.spec import RunSpec
from repro.api.store import MemoryStore
from repro.errors import ConfigError, WorkloadError
from repro.scenarios.generator import ScenarioParams, sample_scenarios
from repro.scenarios.sweep import run_sweep
from repro.surrogate import (
    FEATURE_NAMES,
    TARGETS,
    FrontierSelection,
    SurrogateModel,
    TrainRow,
    cell_key,
    describe_features,
    feature_schema_hash,
    featurize,
    featurize_spec,
    interest_scores,
    list_model_ids,
    load_model,
    rank_correlation,
    record_targets,
    rows_from_records,
    save_model,
    select_frontier,
    top_fraction_keys,
    train_from_records,
    train_from_rows,
)

SCN = "scn-gather-n24-m45-r2-a30-s7"


# ----------------------------------------------------------------------
# Featurizer
# ----------------------------------------------------------------------
class TestFeaturizer:
    def test_same_cell_same_vector(self):
        a = featurize(SCN, "baseline", "mdc/mincoms")
        b = featurize(SCN, "baseline", "mdc/mincoms")
        assert a == b
        assert len(a) == len(FEATURE_NAMES)

    def test_knobs_decode_straight_from_the_name(self):
        params = ScenarioParams.parse(SCN)
        named = describe_features(featurize(SCN))
        assert named["bias"] == 1.0
        assert named["scn_size"] == params.size
        assert named["scn_mem_pct"] == params.mem_pct
        assert named["scn_recurrence"] == params.recurrence
        assert named["scn_alias_pct"] == params.alias_pct
        assert named["scn_rec_x_size"] == params.recurrence * params.size
        assert named["scn_alias_x_mem"] == params.alias_pct * params.mem_pct
        assert named["fam_gather"] == 1.0
        assert named["ddg_nodes"] > 0

    def test_machine_model_suffix_decodes(self):
        named = describe_features(featurize(SCN, machine="baseline-mmdls"))
        assert named["model_dls"] == 1.0
        assert named["model_snooping"] == 0.0
        # An explicit model argument wins over the suffix.
        named = describe_features(
            featurize(SCN, machine="baseline-mmdls", model="snooping")
        )
        assert named["model_snooping"] == 1.0

    def test_generated_machine_names_decode(self):
        machine = "gen-c4-mb1x8-rb4x2-cm512b32a2-nl60p2"
        named = describe_features(featurize(SCN, machine=machine))
        assert named["mach_clusters"] == 4.0
        assert named["mach_mem_buses"] == 1.0
        assert named["mach_mem_bus_latency"] == 8.0
        assert named["mach_nl_latency"] == 60.0
        # The -mm suffix composes with generated names too.
        named = describe_features(featurize(SCN, machine=machine + "-mmdls"))
        assert named["model_dls"] == 1.0

    def test_spec_and_direct_featurization_agree(self):
        spec = RunSpec(benchmark=SCN, variant="ddgt/prefclus",
                       machine="baseline", scale=0.05, model="dls")
        assert featurize_spec(spec) == featurize(
            SCN, "baseline", "ddgt/prefclus", model="dls"
        )

    def test_only_scenario_names_featurize(self):
        with pytest.raises(WorkloadError):
            featurize("gsmdec")

    def test_unknown_variant_is_an_error(self):
        with pytest.raises(WorkloadError):
            featurize(SCN, variant="bogus/heur")

    def test_schema_hash_is_stable_and_named(self):
        assert feature_schema_hash() == feature_schema_hash()
        assert len(set(FEATURE_NAMES)) == len(FEATURE_NAMES)

    def test_cell_key_identity(self):
        assert cell_key(SCN, "baseline", "mdc/prefclus", "dls") == (
            f"{SCN}|baseline|mdc/prefclus|dls"
        )


# ----------------------------------------------------------------------
# Model fitting + serialization
# ----------------------------------------------------------------------
def _synthetic_rows(n: int = 24):
    """Deterministic rows with a learnable nonlinear structure."""
    rows = []
    specs = sample_scenarios(13, n)
    for i, params in enumerate(specs):
        variant = ("mdc/prefclus", "mdc/mincoms")[i % 2]
        features = featurize(params.name, "baseline", variant)
        rows.append(TrainRow(
            key=cell_key(params.name, "baseline", variant),
            features=features,
            targets={
                "ipc": 2.0 - 0.01 * params.size,
                "ii": float(max(params.recurrence * 3, 2)),
                "traffic": params.alias_pct * params.mem_pct / 100.0,
            },
        ))
    return rows


class TestModelTraining:
    @pytest.mark.parametrize("model_type", ["gbs", "ridge"])
    def test_roundtrip_is_byte_stable(self, model_type):
        model = train_from_rows(_synthetic_rows(), model_type=model_type)
        text = model.to_json()
        clone = SurrogateModel.from_json(text)
        assert clone.to_json() == text, "load -> dump must be byte-identical"
        assert clone.model_id == model.model_id
        vector = _synthetic_rows()[0].features
        assert clone.predict(vector) == model.predict(vector)

    @pytest.mark.parametrize("model_type", ["gbs", "ridge"])
    def test_learns_to_rank_the_training_targets(self, model_type):
        rows = _synthetic_rows(32)
        model = train_from_rows(rows, model_type=model_type,
                                holdout_frac=0.0)
        for target in TARGETS:
            predicted = [model.predict(r.features)[target] for r in rows]
            actual = [r.targets[target] for r in rows]
            assert rank_correlation(predicted, actual) > 0.8, (
                f"{model_type} failed to rank {target} on its own "
                f"training set"
            )

    def test_holdout_metrics_are_reported(self):
        model = train_from_rows(_synthetic_rows(32))
        for target in TARGETS:
            assert set(model.metrics[target]) == {
                "mae", "rank_corr", "holdout"
            }
        assert any(model.metrics[t]["holdout"] > 0 for t in TARGETS)

    def test_too_few_rows_is_a_clean_error(self):
        with pytest.raises(WorkloadError):
            train_from_rows(_synthetic_rows(4))

    def test_unknown_model_type_is_a_clean_error(self):
        with pytest.raises(WorkloadError):
            train_from_rows(_synthetic_rows(), model_type="forest")

    def test_schema_mismatch_refuses_to_predict(self):
        model = train_from_rows(_synthetic_rows())
        model.schema_hash = "0" * 16
        with pytest.raises(ConfigError):
            model.check_schema()

    def test_refit_with_new_rows_replaces_stale_cells(self):
        rows = _synthetic_rows(16)
        model = train_from_rows(rows)
        stale = rows[0]
        fresh = TrainRow(key=stale.key, features=stale.features,
                         targets={"ipc": 9.0, "ii": 1.0, "traffic": 0.0})
        refit = model.refit_with([fresh])
        assert refit.train_size == model.train_size
        assert refit.model_type == model.model_type
        kept = {row.key: row for row in refit.rows}[stale.key]
        assert kept.targets["ipc"] == 9.0

    def test_rank_correlation_properties(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert rank_correlation([3, 2, 1], [10, 20, 30]) == pytest.approx(-1.0)
        assert rank_correlation([1.0], [2.0]) == 0.0
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0


# ----------------------------------------------------------------------
# Frontier guide
# ----------------------------------------------------------------------
class TestGuide:
    def test_interest_scores_bounds(self):
        targets = [
            {"ipc": 2.0, "ii": 2.0, "traffic": 0.1},
            {"ipc": 0.5, "ii": 9.0, "traffic": 5.0},
            {"ipc": 1.0, "ii": 4.0, "traffic": 1.0},
        ]
        scores = interest_scores(targets)
        assert all(0.0 <= s <= 3.0 for s in scores)
        # The stall-bound, traffic-heavy, high-II cell dominates.
        assert scores[1] == max(scores)
        assert interest_scores([targets[0]]) == [1.5]

    def test_top_fraction_is_deterministic_and_nonempty(self):
        keys = [f"cell-{i}" for i in range(10)]
        targets = [
            {"ipc": 1.0, "ii": float(i), "traffic": float(i % 3)}
            for i in range(10)
        ]
        first = top_fraction_keys(keys, targets, 0.1)
        assert first == top_fraction_keys(keys, targets, 0.1)
        assert len(first) == 1
        assert top_fraction_keys([], [], 0.1) == []

    def _specs_and_model(self):
        names = [p.name for p in sample_scenarios(17, 12)]
        specs = [
            RunSpec(benchmark=name, variant=variant, machine="baseline",
                    scale=0.05)
            for name in names
            for variant in ("mdc/prefclus", "mdc/mincoms")
        ]
        return specs, train_from_rows(_synthetic_rows())

    def test_select_frontier_partitions_the_specs(self):
        specs, model = self._specs_and_model()
        sel = select_frontier(specs, model, 8, explore_frac=0.25, seed=3)
        assert isinstance(sel, FrontierSelection)
        assert len(sel.chosen) == 8
        assert len(sel.chosen) + len(sel.skipped) == len(specs)
        assert sel.frontier_count + sel.explore_count == 8
        assert sel.explore_count == 2
        chosen_keys = {s.content_hash for s in sel.chosen}
        assert not chosen_keys & {s.content_hash for s in sel.skipped}

    def test_selection_is_deterministic_per_seed(self):
        specs, model = self._specs_and_model()
        first = select_frontier(specs, model, 8, seed=1)
        again = select_frontier(specs, model, 8, seed=1)
        assert [s.content_hash for s in first.chosen] == [
            s.content_hash for s in again.chosen
        ]

    def test_budget_covering_everything_skips_nothing(self):
        specs, model = self._specs_and_model()
        sel = select_frontier(specs, model, len(specs) + 5)
        assert sel.chosen == specs
        assert sel.skipped == []

    def test_invalid_budget_and_explore_frac(self):
        specs, model = self._specs_and_model()
        with pytest.raises(WorkloadError):
            select_frontier(specs, model, 0)
        with pytest.raises(WorkloadError):
            select_frontier(specs, model, 4, explore_frac=1.5)


# ----------------------------------------------------------------------
# Model artifacts on disk
# ----------------------------------------------------------------------
class TestModelStore:
    def test_save_load_latest_roundtrip(self, tmp_path):
        model = train_from_rows(_synthetic_rows())
        path = save_model(model, tmp_path)
        assert path.is_file()
        assert list_model_ids(tmp_path) == [model.model_id]
        loaded = load_model("latest", tmp_path)
        assert loaded.to_json() == model.to_json()
        by_id = load_model(model.model_id, tmp_path)
        assert by_id.model_id == model.model_id
        by_path = load_model(str(path), tmp_path)
        assert by_path.model_id == model.model_id

    def test_save_is_idempotent(self, tmp_path):
        model = train_from_rows(_synthetic_rows())
        assert save_model(model, tmp_path) == save_model(model, tmp_path)
        assert len(list_model_ids(tmp_path)) == 1

    def test_missing_model_is_a_clean_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_model("latest", tmp_path)
        with pytest.raises(ConfigError):
            load_model("deadbeef00000000", tmp_path)


# ----------------------------------------------------------------------
# Provenance: RunRecord.source
# ----------------------------------------------------------------------
class TestProvenance:
    def test_store_hits_are_tagged_but_not_serialized(self):
        runner = Runner(store=MemoryStore(), artifacts=MemoryArtifactStore())
        spec = RunSpec(benchmark=SCN, variant="mdc/prefclus",
                       machine="baseline", scale=0.05)
        first = runner.run([spec])[0]
        again = runner.run([spec])[0]
        assert first.source == "simulated"
        assert again.source == "store"
        assert first == again, "provenance must not affect equality"
        assert "source" not in first.to_dict()
        assert "source" not in json.dumps(again.to_dict())


# ----------------------------------------------------------------------
# Differential validation on a seeded 64-cell space
# ----------------------------------------------------------------------
VARIANTS_64 = ("none/mincoms", "mdc/prefclus", "mdc/mincoms",
               "ddgt/mincoms")


@pytest.fixture(scope="module")
def seeded_space():
    """Exhaustive ground truth + a guided sweep of the same 64-cell
    space (16 scenarios x 4 variants), sharing nothing but the seed."""
    names = [p.name for p in sample_scenarios(29, 16)]
    full = run_sweep(
        names, scale=0.05, variants=VARIANTS_64,
        runner=Runner(store=MemoryStore(), artifacts=MemoryArtifactStore()),
    )
    model = train_from_records(full.records[: len(full.records) // 2])
    guided = run_sweep(
        names, scale=0.05, variants=VARIANTS_64,
        runner=Runner(store=MemoryStore(), artifacts=MemoryArtifactStore()),
        surrogate=model, budget=24, explore_frac=0.125,
    )
    return full, guided, model


class TestGuidedSweepDifferential:
    def test_space_is_64_cells(self, seeded_space):
        full, _, _ = seeded_space
        assert len(full.records) == 64

    def test_budget_is_respected(self, seeded_space):
        _, guided, _ = seeded_space
        assert guided.simulated_runs <= 24
        assert guided.skipped_runs == 64 - guided.simulated_runs

    def test_guided_anomalies_are_a_subset_of_exhaustive(self, seeded_space):
        full, guided, _ = seeded_space
        assert set(guided.anomalies) <= set(full.anomalies), (
            "a guided sweep must never report an anomaly the exhaustive "
            "sweep would not"
        )

    def test_anomalies_are_backed_by_simulated_records(self, seeded_space):
        _, guided, _ = seeded_space
        measured = {r.benchmark for r in guided.records}
        skipped_only = {
            s.benchmark for s in guided.skipped_specs
        } - measured
        for anomaly in guided.anomalies:
            scenario = anomaly.split("scenario=")[1].split()[0]
            assert scenario in measured
            assert scenario not in skipped_only

    def test_summaries_account_for_every_cell(self, seeded_space):
        _, guided, _ = seeded_space
        simulated = sum(s.simulated for s in guided.summaries)
        skipped = sum(s.skipped for s in guided.summaries)
        assert simulated == guided.simulated_runs
        assert skipped == len(guided.skipped_specs)
        assert simulated + skipped == 64
        for summary in guided.summaries:
            if summary.runs == 0:
                assert summary.source == "skipped"
            assert summary.source in (
                "simulated", "store", "skipped", "mixed"
            )

    def test_csv_rows_carry_the_source_column(self, seeded_space):
        _, guided, _ = seeded_space
        header, *rows = guided.to_csv().strip().splitlines()
        assert header.split(",")[-3:] == ["simulated", "skipped", "source"]
        assert any(row.split(",")[-1] == "skipped" for row in rows)

    def test_active_learning_refits_on_fresh_ground_truth(self, seeded_space):
        _, guided, model = seeded_space
        refit = guided.surrogate
        assert refit is not model
        assert refit.train_size > model.train_size
        fresh_keys = {
            cell_key(r.benchmark, r.machine, r.variant, r.model)
            for r in guided.records if r.source == "simulated"
        }
        assert fresh_keys <= {row.key for row in refit.rows}

    def test_store_hits_ride_free_outside_the_budget(self):
        names = [p.name for p in sample_scenarios(31, 4)]
        runner = Runner(store=MemoryStore(), artifacts=MemoryArtifactStore())
        warm = run_sweep(names, scale=0.05, variants=VARIANTS_64,
                         runner=runner)
        model = train_from_records(warm.records)
        guided = run_sweep(
            names, scale=0.05, variants=VARIANTS_64, runner=runner,
            surrogate=model, budget=1,
        )
        assert guided.store_runs == 16
        assert guided.simulated_runs == 0
        assert guided.skipped_runs == 0

    def test_surrogate_without_budget_is_an_error(self, seeded_space):
        _, _, model = seeded_space
        with pytest.raises(WorkloadError):
            run_sweep(["scn-stream-n16-m40-r0-a10-s1"], scale=0.05,
                      surrogate=model)


# ----------------------------------------------------------------------
# CLI: surrogate train / guided sweep / cache + list integration
# ----------------------------------------------------------------------
class TestSurrogateCli:
    def _warm_cache(self, cache):
        assert main([
            "scenarios", "sweep", "--seed", "19", "--count", "4",
            "--scale", "0.05", "--cache-dir", str(cache),
        ]) == 0

    def test_train_guide_list_cache_loop(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        self._warm_cache(cache)
        capsys.readouterr()

        assert main(["surrogate", "train", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "surrogate model" in out
        assert list_model_ids(cache), "train must save an artifact"

        assert main([
            "scenarios", "sweep", "--seed", "23", "--count", "4",
            "--scale", "0.05", "--cache-dir", str(cache),
            "--surrogate", "--budget", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "surrogate-guided" in out

        assert main(["list"]) == 0
        assert "surrogate models" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
        info = capsys.readouterr().out
        assert "surrogate" in info

        assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert list_model_ids(cache) == []

    def test_min_rank_corr_floor_fails_the_train(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        self._warm_cache(cache)
        capsys.readouterr()
        assert main([
            "surrogate", "train", "--cache-dir", str(cache),
            "--min-rank-corr", "1.01", "--no-save",
        ]) == 1
        assert "rank" in capsys.readouterr().err.lower()

    def test_guided_sweep_without_budget_is_a_clean_error(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        self._warm_cache(cache)
        capsys.readouterr()
        assert main(["surrogate", "train", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main([
            "scenarios", "sweep", "--seed", "23", "--count", "2",
            "--cache-dir", str(cache), "--surrogate",
        ]) != 0
        assert "budget" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Training rows from records
# ----------------------------------------------------------------------
class TestTrainingRows:
    def test_rows_dedup_by_cell_and_skip_catalog(self, seeded_space):
        full, _, _ = seeded_space
        rows = rows_from_records(list(full.records) + list(full.records))
        assert len(rows) == len(full.records)
        assert rows == sorted(rows, key=lambda row: row.key)

    def test_record_targets_are_finite(self, seeded_space):
        full, _, _ = seeded_space
        for record in full.records:
            targets = record_targets(record)
            assert set(targets) == set(TARGETS)
            for value in targets.values():
                assert value >= 0.0
