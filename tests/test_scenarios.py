"""The ``repro.scenarios`` subsystem: generator, machine space, sweep
harness and the ``repro scenarios`` CLI verb."""

from __future__ import annotations

import pytest

from repro.api.cli import main
from repro.api.records import LoopRecord, RunRecord
from repro.api.spec import RunSpec
from repro.arch.config import (
    BASELINE_CONFIG,
    encode_config_name,
    named_config,
    parse_config_name,
)
from repro.errors import ConfigError, WorkloadError
from repro.scenarios import (
    DEFAULT_MACHINE_SPACE,
    DEFAULT_SCENARIOS,
    DIFFERENTIAL_VARIANTS,
    FAMILIES,
    ScenarioParams,
    ScenarioRng,
    build_scenario_ddg,
    machine_grid,
    sample_machines,
    sample_scenarios,
    scenario_benchmark,
    scenario_family,
    summarize,
    sweep_plan,
)
from repro.sim.stats import SimStats
from repro.workloads.catalog import benchmark_names, get_benchmark


class TestScenarioParams:
    def test_name_roundtrip(self):
        params = ScenarioParams("gather", size=36, mem_pct=55,
                                recurrence=3, alias_pct=25, seed=99)
        assert params.name == "scn-gather-n36-m55-r3-a25-s99"
        assert ScenarioParams.parse(params.name) == params

    def test_every_knob_is_validated(self):
        with pytest.raises(WorkloadError):
            ScenarioParams("nosuch")
        with pytest.raises(WorkloadError):
            ScenarioParams("stream", size=2)
        with pytest.raises(WorkloadError):
            ScenarioParams("stream", mem_pct=99)
        with pytest.raises(WorkloadError):
            ScenarioParams("stream", recurrence=7)
        with pytest.raises(WorkloadError):
            ScenarioParams("stream", alias_pct=101)
        with pytest.raises(WorkloadError):
            ScenarioParams.parse("scn-stream-bogus")

    def test_default_scenarios_cover_every_family(self):
        assert len(DEFAULT_SCENARIOS) == len(FAMILIES)
        assert [ScenarioParams.parse(n).family for n in DEFAULT_SCENARIOS] \
            == list(FAMILIES)


class TestScenarioRng:
    def test_streams_are_deterministic_and_seed_sensitive(self):
        a = [ScenarioRng(7).next_u64() for _ in range(5)]
        b = [ScenarioRng(7).next_u64() for _ in range(5)]
        c = [ScenarioRng(8).next_u64() for _ in range(5)]
        assert a == b
        assert a != c

    def test_randint_bounds(self):
        rng = ScenarioRng(0)
        draws = {rng.randint(3, 6) for _ in range(200)}
        assert draws == {3, 4, 5, 6}
        with pytest.raises(WorkloadError):
            rng.randint(4, 3)

    def test_fork_does_not_perturb_parent(self):
        a, b = ScenarioRng(1), ScenarioRng(1)
        a.fork("x")
        b.fork("x")
        assert a.next_u64() == b.next_u64()


class TestGenerator:
    def test_knobs_shape_the_graph(self):
        small = build_scenario_ddg(ScenarioParams("stream", size=12))
        large = build_scenario_ddg(ScenarioParams("stream", size=48))
        assert len(large) > len(small)

        lean = build_scenario_ddg(
            ScenarioParams("stream", size=40, mem_pct=10))
        rich = build_scenario_ddg(
            ScenarioParams("stream", size=40, mem_pct=60))
        assert len(rich.memory_instructions()) > \
            len(lean.memory_instructions())

    def test_seed_changes_structure(self):
        a = build_scenario_ddg(ScenarioParams("alias", seed=1))
        b = build_scenario_ddg(ScenarioParams("alias", seed=2))
        assert a.fingerprint() != b.fingerprint()

    def test_chase_is_a_load_chain(self):
        ddg = build_scenario_ddg(ScenarioParams("chase", size=24,
                                                mem_pct=40, seed=3))
        loads = ddg.loads()
        # Each hop's address register is produced by the previous load.
        chained = sum(
            1 for ld in loads
            if any(src.dest in ld.srcs for src in loads if src is not ld)
        )
        assert chained >= len(loads) - 2

    def test_scenario_benchmark_is_cached_and_consistent(self):
        name = DEFAULT_SCENARIOS[0]
        bench = scenario_benchmark(name)
        assert scenario_benchmark(name) is bench
        assert bench.name == name
        assert not bench.evaluated
        assert bench.loops[0].ddg.fingerprint() == \
            build_scenario_ddg(ScenarioParams.parse(name)).fingerprint()

    def test_sample_is_deterministic_and_prefix_stable(self):
        first = sample_scenarios(5, 20)
        again = sample_scenarios(5, 20)
        longer = sample_scenarios(5, 40)
        assert first == again
        assert longer[:20] == first
        assert sample_scenarios(6, 20) != first

    def test_sample_respects_family_filter(self):
        only = sample_scenarios(0, 9, families=("chase", "alias"))
        assert {p.family for p in only} == {"chase", "alias"}
        with pytest.raises(WorkloadError):
            sample_scenarios(0, 3, families=("nosuch",))


class TestCatalogIntegration:
    def test_get_benchmark_resolves_scenario_names(self):
        bench = get_benchmark(DEFAULT_SCENARIOS[1])
        assert bench.name == DEFAULT_SCENARIOS[1]

    def test_malformed_scenario_name_is_a_workload_error(self):
        with pytest.raises(WorkloadError):
            get_benchmark("scn-bogus")

    def test_benchmark_names_lists_scenarios_when_asked(self):
        default = benchmark_names()
        everything = benchmark_names(evaluated_only=False)
        assert not any(n.startswith("scn-") for n in default)
        for name in DEFAULT_SCENARIOS:
            assert name in everything

    def test_runspec_content_hash_works_for_scenarios(self):
        spec = RunSpec(benchmark=DEFAULT_SCENARIOS[0], scale=0.1)
        assert spec.content_hash == RunSpec(
            benchmark=DEFAULT_SCENARIOS[0], scale=0.1).content_hash


class TestMachineSpace:
    def test_encode_parse_roundtrip(self):
        name = encode_config_name(BASELINE_CONFIG)
        config = parse_config_name(name)
        assert encode_config_name(config) == name
        assert config.num_clusters == BASELINE_CONFIG.num_clusters
        assert config.cache == BASELINE_CONFIG.cache

    def test_named_config_decodes_generated_names(self):
        config = named_config("gen-c8-mb4x2-rb4x2-cm2048b32a2-nl10p4")
        assert config.num_clusters == 8
        assert config.subblock_bytes == 4

    def test_unencodable_fields_are_refused_not_dropped(self):
        """A config whose unencoded fields differ from the defaults has
        no faithful name — encoding must raise, not silently decode into
        a different machine."""
        from dataclasses import replace

        from repro.arch.config import CacheConfig, FuKind

        beefy = replace(
            BASELINE_CONFIG,
            fu_per_cluster={FuKind.INT: 2, FuKind.FP: 2, FuKind.MEM: 2},
        )
        with pytest.raises(ConfigError, match="fu_per_cluster"):
            encode_config_name(beefy)
        slow_hit = replace(BASELINE_CONFIG, cache=CacheConfig(hit_latency=2))
        with pytest.raises(ConfigError, match="hit_latency"):
            encode_config_name(slow_hit)
        with pytest.raises(ConfigError, match="attraction"):
            encode_config_name(BASELINE_CONFIG.with_attraction_buffers())

    def test_bad_generated_names_raise(self):
        with pytest.raises(ConfigError):
            named_config("gen-bogus")
        with pytest.raises(ConfigError):
            # 16-byte blocks cannot give 8 clusters an interleave unit.
            named_config("gen-c8-mb4x2-rb4x2-cm2048b16a2-nl10p4")
        with pytest.raises(ConfigError):
            named_config("definitely-unknown")

    def test_grid_skips_invalid_geometry(self):
        names = machine_grid(clusters=(8,), caches=((2048, 16, 2),))
        assert names == []

    def test_grid_and_sample_are_deterministic(self):
        assert machine_grid() == machine_grid()
        assert sample_machines(3, 5) == sample_machines(3, 5)
        for name in sample_machines(3, 5):
            named_config(name)  # every sampled name must decode

    def test_default_space_resolves(self):
        for name in DEFAULT_MACHINE_SPACE:
            named_config(name)


def _fake_record(benchmark, variant, violations=0, machine="baseline"):
    stats = SimStats()
    stats.compute_cycles = 80
    stats.stall_cycles = 20
    stats.issued_ops = 300
    stats.bus_transfers = 12
    loop = LoopRecord(
        benchmark=benchmark, loop=f"{benchmark}.loop", variant=variant,
        ii=5, unroll=2, kernel_iterations=50, compute_cycles=80,
        stall_cycles=20, stats=stats, violations=violations,
        static_copies=1, replicated_instances=0, fake_consumers=0,
    )
    return RunRecord(benchmark=benchmark, variant=variant, machine=machine,
                     scale=0.1, loops=[loop])


class TestSweepHarness:
    def test_sweep_plan_is_the_full_grid(self):
        names = list(DEFAULT_SCENARIOS[:2])
        plan = sweep_plan(names, machines=list(DEFAULT_MACHINE_SPACE),
                          scale=0.1)
        assert len(plan) == 2 * len(DEFAULT_MACHINE_SPACE) * \
            len(DIFFERENTIAL_VARIANTS)

    def test_sweep_plan_rejects_non_scenarios(self):
        with pytest.raises(WorkloadError):
            sweep_plan(["gsmdec"])

    def test_scenario_family(self):
        assert scenario_family("scn-chase-n24-m40-r1-a10-s0") == "chase"

    def test_free_violations_are_expected_not_anomalous(self):
        name = "scn-alias-n24-m40-r1-a10-s0"
        result = summarize([
            _fake_record(name, "none/mincoms", violations=9),
            _fake_record(name, "mdc/prefclus", violations=0),
            _fake_record(name, "ddgt/prefclus", violations=0),
        ])
        assert result.ok
        assert sum(result.free_violations.values()) == 9
        assert "differential check passed" in result.render()

    def test_coherent_violations_are_anomalies(self):
        name = "scn-alias-n24-m40-r1-a10-s0"
        result = summarize([
            _fake_record(name, "mdc/prefclus", violations=3),
        ])
        assert not result.ok
        assert "mdc/prefclus" in result.anomalies[0]
        assert "DIFFERENTIAL CHECK FAILED" in result.render()
        # The anomaly names the full (scenario, coherence, heuristic)
        # triple and carries a stable reproduction command.
        assert f"scenario={name}" in result.anomalies[0]
        assert "coherence=mdc" in result.anomalies[0]
        assert "heuristic=prefclus" in result.anomalies[0]
        assert (
            f"repro run {name} -v mdc/prefclus --machine baseline "
            "--scale 0.1" in result.anomalies[0]
        )

    def test_summary_metrics(self):
        name = "scn-stream-n24-m40-r1-a10-s0"
        result = summarize([_fake_record(name, "none/prefclus")])
        (cell,) = result.summaries
        assert cell.family == "stream"
        assert cell.runs == 1
        assert cell.mean_ii == 5.0
        assert cell.mean_ipc == pytest.approx(3.0)
        assert cell.mean_bus_per_iter == pytest.approx(12 / 50)
        header = result.to_csv().splitlines()[0]
        assert header.startswith("family,variant,runs")


class TestScenariosCli:
    def test_generate_lists_scenarios(self, capsys):
        assert main(["scenarios", "generate", "--seed", "1",
                     "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "scn-stream-" in out and "fingerprint" in out

    def test_generate_family_filter(self, capsys):
        assert main(["scenarios", "generate", "--count", "3",
                     "--family", "chase"]) == 0
        out = capsys.readouterr().out
        assert "scn-chase-" in out and "scn-stream-" not in out

    def test_sweep_then_report_from_warm_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["--seed", "0", "--count", "2", "--scale", "0.1",
                "--cache-dir", cache]
        csv_path = tmp_path / "summary.csv"
        rc = main(["scenarios", "sweep", *args, "--csv", str(csv_path)])
        sweep_out = capsys.readouterr().out
        assert rc == 0
        assert "differential check passed" in sweep_out
        assert csv_path.read_text().startswith("family,variant")

        rc = main(["scenarios", "report", *args])
        report_out = capsys.readouterr().out
        assert rc == 0
        assert "warning" not in report_out
        # The report's summary table matches the sweep's byte for byte.
        assert report_out.splitlines()[1:] == sweep_out.splitlines()[1:]

    def test_report_on_cold_store_is_incomplete_not_passed(self, tmp_path,
                                                           capsys):
        """Absent runs are an unperformed check: nonzero exit, loud text."""
        rc = main(["scenarios", "report", "--seed", "9", "--count", "2",
                   "--scale", "0.1", "--cache-dir", str(tmp_path / "c")])
        assert rc == 1
        assert "DIFFERENTIAL CHECK INCOMPLETE" in capsys.readouterr().out

    def test_bad_family_is_a_clean_error(self, capsys):
        rc = main(["scenarios", "generate", "--count", "2",
                   "--family", "nosuch"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
