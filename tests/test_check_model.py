"""The protocol model itself: state encoding, guards, enumeration."""

import pytest

from repro.check.model import (
    ABSENT,
    CLEAN,
    COMPLETE,
    CORE_TRANSITIONS,
    DIRTY,
    TRANSITION_TABLE,
    UNISSUED,
    ModelOp,
    ProtocolModel,
    enumerate_programs,
    is_disciplined,
)


def ld(index, cluster, sb):
    return ModelOp(index, cluster, "load", sb)


def st(index, cluster, sb):
    return ModelOp(index, cluster, "store", sb)


class TestEnumeration:
    def test_program_count_is_shapes_to_the_length(self):
        # (clusters x kinds x subblocks) ** length
        programs = list(enumerate_programs(2, 2, 3))
        assert len(programs) == (2 * 2 * 2) ** 3
        assert all(len(p) == 3 for p in programs)
        assert all(
            op.index == i for p in programs for i, op in enumerate(p)
        )

    def test_single_op_programs(self):
        programs = list(enumerate_programs(2, 1, 1))
        assert len(programs) == 4  # 2 clusters x {load, store} x 1 sb

    def test_disciplined_requires_colocated_aliasing_pairs(self):
        assert is_disciplined([st(0, 0, 0), ld(1, 0, 0)])
        assert not is_disciplined([st(0, 0, 0), ld(1, 1, 0)])
        # Load-load pairs and distinct subblocks never constrain.
        assert is_disciplined([ld(0, 0, 0), ld(1, 1, 0)])
        assert is_disciplined([st(0, 0, 0), st(1, 1, 1)])


class TestModelBasics:
    def test_home_is_interleaved_by_subblock(self):
        model = ProtocolModel(2, 4, (ld(0, 0, 0),))
        assert [model.home(sb) for sb in range(4)] == [0, 1, 0, 1]
        assert model.is_local(ld(0, 0, 0))
        assert not model.is_local(ld(0, 0, 1))

    def test_expected_versions_follow_program_order(self):
        model = ProtocolModel(
            2, 2, (ld(0, 0, 0), st(1, 0, 0), ld(2, 0, 0), ld(3, 0, 1))
        )
        assert model.expected_version(0) == 0  # before any store
        assert model.expected_version(2) == 2  # st op1 writes version 2
        assert model.expected_version(3) == 0  # other subblock untouched

    def test_initial_state_is_cold_and_unissued(self):
        model = ProtocolModel(2, 2, (ld(0, 0, 0), st(1, 1, 1)))
        state = model.initial_state()
        assert state.cache == (ABSENT, ABSENT)
        assert state.versions == (0, 0)
        assert all(status == UNISSUED for status, _ in state.ops)

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            ProtocolModel(2, 2, (ld(0, 0, 0),), mutation="nonesuch")

    def test_mutation_only_transitions_gated(self):
        program = (ld(0, 0, 0),)
        faithful = ProtocolModel(2, 2, program)
        mutated = ProtocolModel(2, 2, program, mutation="stale_combining")
        names = {e.name for e in TRANSITION_TABLE}
        assert set(CORE_TRANSITIONS) < names
        assert "issue_remote_combine" in names
        assert "issue_remote_combine" not in CORE_TRANSITIONS
        # The guard machinery never offers a gated transition.
        for model in (faithful, mutated):
            state = model.initial_state()
            enabled = {t.name for t in model.enabled(state)}
            assert enabled <= (
                set(CORE_TRANSITIONS)
                | ({"issue_remote_combine", "deliver_request_premature"}
                   if model.mutation else set())
            )


class TestExecution:
    def run_to_completion(self, model, pick=0):
        """Apply transitions (always the ``pick``-th enabled one) until
        quiescence; returns the final state and the trail of names."""
        state = model.initial_state()
        names = []
        for _ in range(100):
            enabled = model.enabled(state)
            if not enabled:
                return state, names
            t = enabled[min(pick, len(enabled) - 1)]
            names.append(t.name)
            state, _events = model.apply(state, t)
        raise AssertionError("model did not quiesce in 100 steps")

    def test_local_store_walks_miss_fill_dirty(self):
        model = ProtocolModel(2, 2, (st(0, 0, 0),))
        state, names = self.run_to_completion(model)
        assert names == ["issue_local_miss", "fill_complete"]
        assert state.cache[0] == DIRTY
        assert state.versions[0] == 1
        assert state.ops[0][0] == COMPLETE

    def test_remote_load_walks_request_response(self):
        model = ProtocolModel(2, 2, (ld(0, 1, 0),))  # home(0)=0, issuer c1
        state, names = self.run_to_completion(model)
        assert names == [
            "issue_remote", "deliver_request_miss", "fill_complete",
            "deliver_response",
        ]
        assert state.cache[0] == CLEAN
        assert state.ops[0] == (COMPLETE, 0)  # observed initial contents

    def test_apply_is_deterministic(self):
        model = ProtocolModel(2, 2, (st(0, 0, 0), ld(1, 1, 0)))
        state = model.initial_state()
        t = model.enabled(state)[0]
        once = model.apply(state, t)
        again = model.apply(state, t)
        assert once == again
        assert state == model.initial_state()  # states are immutable

    def test_describers_render_strings(self):
        model = ProtocolModel(2, 2, (st(0, 0, 0), ld(1, 1, 0)))
        state = model.initial_state()
        assert "sb0@c0=absent" in model.describe_state(state)
        for t in model.enabled(state):
            assert isinstance(model.describe_transition(t), str)

    def test_issue_respects_per_chain_program_order(self):
        # Two same-cluster, same-subblock ops: op1 must wait for op0.
        model = ProtocolModel(2, 2, (st(0, 0, 0), ld(1, 0, 0)))
        state = model.initial_state()
        first = {t for t in model.enabled(state) if t.name.startswith("issue")}
        assert all(t.args == (0,) for t in first)
