"""Experiment-driver tests on a reduced benchmark subset and scale.

These check the *shape* claims each figure/table must reproduce, not
absolute numbers (see EXPERIMENTS.md for the full-scale comparison).
"""

import pytest

from repro.experiments import (
    run_figure6,
    run_figure7,
    run_figure9,
    run_nobal,
    run_table4,
    run_table5,
)
from repro.experiments.common import (
    DDGT_PREF,
    FREE_PREF,
    MDC_PREF,
    run_benchmark,
)

SCALE = 0.15
SUBSET = ["epicdec", "gsmdec", "pgpdec"]


@pytest.fixture(scope="module")
def figure6():
    return run_figure6(SUBSET, scale=SCALE)


@pytest.fixture(scope="module")
def figure7():
    return run_figure7(SUBSET, scale=SCALE)


class TestFigure6Shape:
    def test_mdc_reduces_local_hits(self, figure6):
        """Chains concentrate in one cluster: local hit ratio drops."""
        assert figure6.mean_local_hit("MDC") < figure6.mean_local_hit("free")

    def test_ddgt_maximizes_local_hits(self, figure6):
        """All loads at their preferred cluster + local replicated stores:
        DDGT beats even unrestricted scheduling (section 4.2)."""
        assert figure6.mean_local_hit("DDGT") >= figure6.mean_local_hit("free")
        assert figure6.mean_local_hit("DDGT") > figure6.mean_local_hit("MDC")

    def test_epicdec_collapse_under_mdc(self, figure6):
        """The paper's starkest example: epicdec's local hits collapse."""
        free = figure6.local_hit("epicdec", "free")
        mdc = figure6.local_hit("epicdec", "MDC")
        assert mdc < 0.75 * free

    def test_fractions_sum_to_one(self, figure6):
        for bench, bars in figure6.fractions.items():
            for bar, fractions in bars.items():
                assert sum(fractions.values()) == pytest.approx(1.0)

    def test_render_contains_amean(self, figure6):
        assert "AMEAN" in figure6.render()


class TestFigure7Shape:
    def test_ddgt_wins_chain_loops(self):
        """Paper (Table 4 'selected loops' + section 4.2): DDGT outperforms
        MDC on the chain-heavy loops, where free load placement pays.
        The latency-assignment policy may convert either side's stall time
        into compute time, so the robust claim is about total cycles."""
        mdc_total = ddgt_total = 0
        for name in SUBSET:
            mdc = run_benchmark(name, MDC_PREF, scale=SCALE)
            ddgt = run_benchmark(name, DDGT_PREF, scale=SCALE)
            mdc_total += mdc.loops[0].total_cycles
            ddgt_total += ddgt.loops[0].total_cycles
        assert ddgt_total <= mdc_total

    def test_ddgt_wins_epicdec(self, figure7):
        bars = figure7.bars["epicdec"]
        assert (
            bars["ddgt/prefclus"].total < bars["mdc/prefclus"].total
        ), "the paper's headline epicdec result"

    def test_bars_are_positive(self, figure7):
        for bench, bars in figure7.bars.items():
            for bar in bars.values():
                assert bar.compute > 0 and bar.stall >= 0


class TestTable4Shape:
    def test_ddgt_adds_communication(self):
        result = run_table4(SUBSET, scale=SCALE)
        # Replicated stores multiply operand copies on chain benchmarks.
        assert result.comm_ratio["epicdec"] > 1.0
        assert result.comm_ratio["pgpdec"] > 1.0
        assert "Δ com. ops" in result.render()


class TestTable5Shape:
    def test_specialization_shrinks_chains(self):
        result = run_table5()
        for name, (old_cmr, old_car, new_cmr, new_car) in result.rows.items():
            assert new_cmr < old_cmr
            assert new_car < old_car
        assert "epicdec" in result.render()


class TestFigure9Shape:
    def test_attraction_buffers_never_hurt_stall(self):
        """ABs attract remote chain data: MDC's stall time shrinks (or at
        worst stays) vs the AB-less machine (paper: ~30% reduction)."""
        for name in ("epicdec", "rasta"):
            plain = run_benchmark(name, MDC_PREF, scale=SCALE)
            with_ab = run_benchmark(
                name, MDC_PREF, scale=SCALE, attraction=True
            )
            assert with_ab.stall_cycles <= plain.stall_cycles

    def test_figure9_runs_and_reports_epicdec_loop(self):
        result = run_figure9(["epicdec"], scale=SCALE)
        assert "MDC" in result.epicdec_loop
        assert "DDGT" in result.epicdec_loop
        assert result.epicdec_loop["DDGT"]["local_hit"] > 0

    def test_ab_closes_the_gap_except_epicdec(self):
        """With ABs, MDC catches up on pgpdec; epicdec's 76-op chain
        overflows a single cluster's AB so DDGT keeps winning there."""
        result = run_figure9(["epicdec"], scale=SCALE)
        bars = result.figure.bars["epicdec"]
        assert bars["ddgt/prefclus"].total < bars["mdc/prefclus"].total


class TestNobalShape:
    def test_nobal_reg_favors_ddgt_on_chains(self):
        result = run_nobal(["epicdec"], scale=SCALE)
        reg = result.ddgt_speedup_over_best_mdc("nobal+reg", "epicdec")
        mem = result.ddgt_speedup_over_best_mdc("nobal+mem", "epicdec")
        # Expensive remote accesses help DDGT more than cheap ones.
        assert reg > mem - 0.05
        assert "nobal+reg" in result.render()


class TestCoherenceAcrossSweep:
    @pytest.mark.parametrize("variant", [MDC_PREF, DDGT_PREF])
    @pytest.mark.parametrize("name", SUBSET)
    def test_no_violations_anywhere(self, name, variant):
        run = run_benchmark(name, variant, scale=SCALE)
        assert run.violations == 0

    def test_baseline_keeps_timing_edges(self):
        """Even the optimistic baseline rarely violates on these loops —
        memory edges still constrain timing — but it is *allowed* to."""
        run = run_benchmark("epicdec", FREE_PREF, scale=SCALE)
        assert run.violations >= 0
