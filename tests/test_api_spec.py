"""RunSpec/Plan: validation, hashing, grid construction."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.spec import (
    ALL_VARIANTS,
    FIGURE7_BARS,
    MDC_PREF,
    Plan,
    RunSpec,
    Variant,
    default_scale,
    machine_fingerprint,
    parse_variant,
)
from repro.arch.config import BASELINE_CONFIG, NOBAL_REG_CONFIG
from repro.errors import ConfigError
from repro.sched.pipeline import CoherenceMode, Heuristic

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestDefaultScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale() == 0.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25

    @pytest.mark.parametrize("raw", ["banana", "", "0", "-1", "nan", "inf"])
    def test_invalid_values_raise_config_error(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SCALE", raw)
        with pytest.raises(ConfigError) as exc:
            default_scale()
        assert repr(raw) in str(exc.value)


class TestVariantParsing:
    def test_roundtrip(self):
        for variant in ALL_VARIANTS:
            assert parse_variant(variant.key) == variant

    def test_variant_passthrough(self):
        assert parse_variant(MDC_PREF) is MDC_PREF

    def test_bad_shape(self):
        with pytest.raises(ConfigError):
            parse_variant("mdc")

    def test_bad_coherence(self):
        with pytest.raises(ConfigError):
            parse_variant("snoop/prefclus")

    def test_bad_heuristic(self):
        with pytest.raises(ConfigError):
            parse_variant("mdc/roundrobin")


class TestRunSpec:
    def test_scale_resolved_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        spec = RunSpec(benchmark="gsmdec")
        assert spec.scale == 0.25
        # Later env changes do not move an already-built spec.
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        assert spec.scale == 0.25

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            RunSpec(benchmark="gsmdec", scale=-0.5)

    def test_invalid_variant(self):
        with pytest.raises(ConfigError):
            RunSpec(benchmark="gsmdec", variant="nope")

    def test_variant_normalized_from_variant_object(self):
        spec = RunSpec(benchmark="gsmdec", variant=MDC_PREF.key, scale=0.1)
        assert spec.variant == "mdc/prefclus"
        assert spec.variant_obj == Variant(CoherenceMode.MDC,
                                           Heuristic.PREFCLUS)

    def test_dict_roundtrip(self):
        spec = RunSpec(benchmark="epicdec", variant="ddgt/mincoms",
                       machine="nobal+reg", attraction=True, scale=0.3,
                       loop=None, seeds=(7, 11))
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash == spec.content_hash


class TestContentHash:
    def test_differs_by_field(self):
        base = RunSpec(benchmark="gsmdec", scale=0.2)
        assert base.content_hash != RunSpec(
            benchmark="gsmenc", scale=0.2).content_hash
        assert base.content_hash != RunSpec(
            benchmark="gsmdec", scale=0.3).content_hash
        assert base.content_hash != RunSpec(
            benchmark="gsmdec", scale=0.2, attraction=True).content_hash
        assert base.content_hash != RunSpec(
            benchmark="gsmdec", scale=0.2,
            variant="ddgt/prefclus").content_hash

    def test_stable_across_processes(self):
        """The cache key must be identical from a fresh interpreter."""
        spec = RunSpec(benchmark="epicdec", variant="mdc/prefclus",
                       scale=0.2, attraction=True)
        code = (
            "from repro.api.spec import RunSpec;"
            "print(RunSpec(benchmark='epicdec', variant='mdc/prefclus',"
            "scale=0.2, attraction=True).content_hash)"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == spec.content_hash

    def test_machine_fingerprint_sees_structure_not_name(self):
        """Two configs sharing a name but differing structurally must not
        collide (the old cache keyed on config.name alone)."""
        plain = BASELINE_CONFIG
        with_ab = BASELINE_CONFIG.with_attraction_buffers()
        assert machine_fingerprint(plain) != machine_fingerprint(with_ab)
        renamed = NOBAL_REG_CONFIG
        assert machine_fingerprint(plain) != machine_fingerprint(renamed)


class TestPlan:
    def test_grid_order_and_size(self):
        plan = Plan.grid(benchmarks=["a1", "b2"],
                         variants=("mdc/prefclus", "ddgt/prefclus"),
                         scale=0.1)
        assert len(plan) == 4
        assert [(s.benchmark, s.variant) for s in plan] == [
            ("a1", "mdc/prefclus"), ("a1", "ddgt/prefclus"),
            ("b2", "mdc/prefclus"), ("b2", "ddgt/prefclus"),
        ]

    def test_grid_defaults_to_evaluated_benchmarks(self):
        plan = Plan.grid(variants="mdc/prefclus", scale=0.1)
        assert len(plan) == 13

    def test_dedup_preserves_order(self):
        spec = RunSpec(benchmark="gsmdec", scale=0.1)
        other = RunSpec(benchmark="gsmenc", scale=0.1)
        plan = Plan((spec, other, spec))
        assert plan.specs == (spec, other)

    def test_concatenation(self):
        a = Plan.grid(benchmarks="gsmdec", variants="mdc/prefclus",
                      scale=0.1)
        b = Plan.grid(benchmarks="gsmenc", variants="mdc/prefclus",
                      scale=0.1)
        combined = a + b
        assert len(combined) == 2
        assert (a + a).specs == a.specs

    def test_grid_figure7_shape(self):
        plan = Plan.grid(benchmarks=["epicdec"], variants=FIGURE7_BARS,
                         scale=0.1)
        assert len(plan) == 4
        assert plan.describe().startswith("plan ")
