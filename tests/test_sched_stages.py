"""The staged pipeline: stage table, key derivation, artifact sharing."""

import pytest

from repro.api.artifacts import MemoryArtifactStore
from repro.arch.config import BASELINE_CONFIG
from repro.sched.pipeline import CoherenceMode, Heuristic, compile_loop
from repro.sched.stages import (
    FRONTEND_STAGES,
    PIPELINE_STAGES,
    STAGE_BY_NAME,
    disambiguate_key,
    profile_key,
    reset_stage_counters,
    stage_counters,
    unroll_key,
)
from repro.workloads import cached_trace_spec, get_benchmark
from repro.workloads.traces import TraceSpec

MACHINE = BASELINE_CONFIG
ALL_VARIANTS = [
    (coherence, heuristic)
    for coherence in CoherenceMode
    for heuristic in (Heuristic.PREFCLUS, Heuristic.MINCOMS)
]


@pytest.fixture(autouse=True)
def fresh_counters():
    reset_stage_counters()
    yield
    reset_stage_counters()


@pytest.fixture
def loop_spec():
    bench = get_benchmark("gsmdec")
    return bench, bench.loops[0]


class TestStageTable:
    def test_declared_order_and_frontend(self):
        names = [s.name for s in PIPELINE_STAGES]
        assert names == [
            "unroll", "disambiguate", "profile", "coherence", "assign",
            "copies", "schedule", "postpass", "verify",
        ]
        assert FRONTEND_STAGES == ("unroll", "disambiguate", "profile")
        assert all(not STAGE_BY_NAME[n].cacheable
                   for n in names if n not in FRONTEND_STAGES)

    def test_dataflow_is_connected(self):
        """Every stage input is either a pipeline parameter or an output
        of an earlier stage."""
        parameters = {
            "source", "machine", "unroll_factor", "add_mem_deps", "trace",
            "coherence", "heuristic",
        }
        available = set(parameters)
        for stage in PIPELINE_STAGES:
            missing = set(stage.inputs) - available
            assert not missing, f"{stage.name} consumes unknown {missing}"
            available |= set(stage.outputs)


class TestStageKeys:
    def test_unroll_key_sees_graph_machine_and_factor(self, loop_spec):
        _, spec = loop_spec
        base = unroll_key(spec.ddg, MACHINE, None)
        assert base.startswith("unroll-")
        assert unroll_key(spec.ddg, MACHINE, None) == base
        assert unroll_key(spec.ddg, MACHINE, 2) != base
        other_machine = MACHINE.with_interleave(8)
        assert unroll_key(spec.ddg, other_machine, None) != base

    def test_equal_fingerprint_different_order_graphs_never_collide(self):
        """fingerprint() canonicalizes iteration order away; artifact
        keys must not, since deterministic passes are order-sensitive."""
        from repro.ir.ddg import Ddg
        from repro.ir.instructions import Instruction, Opcode

        first = Instruction(iid=0, opcode=Opcode.IALU, seq=0, dest="a")
        second = Instruction(iid=1, opcode=Opcode.IALU, seq=1, dest="b")
        forward = Ddg("g")
        forward.insert(first)
        forward.insert(second)
        backward = Ddg("g")
        backward.insert(second)
        backward.insert(first)
        assert forward.fingerprint() == backward.fingerprint()
        assert forward.to_dict() != backward.to_dict()
        assert unroll_key(forward, MACHINE, 1) != \
            unroll_key(backward, MACHINE, 1)

    def test_chained_keys_propagate(self):
        a = disambiguate_key("unroll-aaa", True)
        assert a != disambiguate_key("unroll-bbb", True)
        assert a != disambiguate_key("unroll-aaa", False)
        p = profile_key(a, MACHINE, "iters256-seed1-padded1", 256)
        assert p != profile_key(a, MACHINE, "iters256-seed2-padded1", 256)
        assert p != profile_key(a, MACHINE, "iters256-seed1-padded1", 128)

    def test_trace_spec_key_and_memoization(self):
        spec = cached_trace_spec(256, seed=11)
        assert spec is cached_trace_spec(256, seed=11)
        assert spec.key == "iters256-seed11-padded1"
        assert cached_trace_spec(256, seed=12) is not spec
        assert TraceSpec(64, 3, padded=False).key == "iters64-seed3-padded0"


class TestFrontendSharing:
    def _compile(self, loop_spec, coherence, heuristic, artifacts):
        bench, spec = loop_spec
        return compile_loop(
            spec.ddg,
            bench.machine(MACHINE),
            coherence=coherence,
            heuristic=heuristic,
            trace_factory=cached_trace_spec(256, seed=bench.profile_seed),
            unroll_factor=spec.unroll,
            artifacts=artifacts,
        )

    def test_variant_cross_executes_frontend_once(self, loop_spec):
        artifacts = MemoryArtifactStore()
        for coherence, heuristic in ALL_VARIANTS:
            self._compile(loop_spec, coherence, heuristic, artifacts)
        counters = stage_counters()
        for stage in FRONTEND_STAGES:
            assert counters.executed[stage] == 1, stage
        # Back-end stages ran for every one of the six variants.
        assert counters.executed["schedule"] == len(ALL_VARIANTS)
        assert counters.frontend_executions() == len(FRONTEND_STAGES)

    def test_without_store_frontend_repeats(self, loop_spec):
        for coherence, heuristic in ALL_VARIANTS:
            self._compile(loop_spec, coherence, heuristic, None)
        counters = stage_counters()
        for stage in FRONTEND_STAGES:
            assert counters.executed[stage] == len(ALL_VARIANTS), stage

    def test_shared_frontend_results_identical(self, loop_spec):
        artifacts = MemoryArtifactStore()
        for coherence, heuristic in ALL_VARIANTS:
            cold = self._compile(loop_spec, coherence, heuristic, None)
            warm = self._compile(loop_spec, coherence, heuristic, artifacts)
            assert cold.ii == warm.ii
            assert cold.unroll_factor == warm.unroll_factor
            assert cold.ddg.fingerprint() == warm.ddg.fingerprint()
            assert cold.source.fingerprint() == warm.source.fingerprint()
            assert cold.num_copies == warm.num_copies
            assert {
                iid: op.cluster for iid, op in cold.schedule.ops.items()
            } == {
                iid: op.cluster for iid, op in warm.schedule.ops.items()
            }

    def test_unkeyed_trace_factory_still_compiles(self, loop_spec):
        """A plain closure (no .key) disables profile caching only."""
        from repro.workloads import trace_factory

        bench, spec = loop_spec
        artifacts = MemoryArtifactStore()
        for _ in range(2):
            compile_loop(
                spec.ddg,
                bench.machine(MACHINE),
                coherence=CoherenceMode.MDC,
                heuristic=Heuristic.PREFCLUS,
                trace_factory=trace_factory(256, seed=bench.profile_seed),
                unroll_factor=spec.unroll,
                artifacts=artifacts,
            )
        counters = stage_counters()
        assert counters.executed["unroll"] == 1
        assert counters.executed["profile"] == 2
        assert not [k for k in artifacts.keys()
                    if k.startswith("profile-")]
