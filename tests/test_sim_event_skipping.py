"""The event-skipping engine vs the per-cycle reference.

Four concerns:

* **equivalence** — both engines produce identical ``SimStats`` and
  violation counts on random scenarios across families, coherence modes,
  machine shapes, and with Attraction Buffers (the golden fixtures in
  ``tests/test_golden_equivalence.py`` additionally pin the default
  engine byte-for-byte against the pre-rewrite monolith);
* **hung-drain watchdog** — a memory system that never quiesces after
  the last issue raises :class:`SimulationError` within the watchdog
  bound under both engines instead of spinning forever;
* **stall watchdog under event skipping** — a load that never completes
  raises the same watchdog error as the per-cycle reference, immediately
  rather than after 100k wall iterations;
* **completion-map pruning** — prune scheduling survives the bulk fast
  path jumping over interval multiples, so the map stays bounded.
"""

from __future__ import annotations

import json

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.arch.config import parse_config_name
from repro.errors import SimulationError
from repro.ir import DdgBuilder
from repro.scenarios import ScenarioParams, build_scenario_ddg
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import ENGINES, MemorySystem, simulate
from repro.sim import executor as executor_mod
from repro.workloads import trace_factory
from repro.workloads.traces import AddressTrace


def _compile(ddg, machine=BASELINE_CONFIG, **kwargs):
    defaults = dict(
        coherence=CoherenceMode.NONE,
        heuristic=Heuristic.MINCOMS,
        trace_factory=trace_factory(64, seed=5),
        profile_iterations=64,
    )
    defaults.update(kwargs)
    return compile_loop(ddg, machine, **defaults)


def _run(compiled, engine, iterations=200, seed=7):
    trace = trace_factory(iterations, seed=seed)(compiled.ddg)
    return simulate(compiled, trace, iterations=iterations, engine=engine)


def _canonical(result):
    return json.dumps(result.stats.to_dict(), sort_keys=True)


def single_load_loop():
    b = DdgBuilder("one-load")
    b.load("x", mem=MemRef("A", stride=16), name="ld")
    b.ialu("y", "x", name="use")
    return b.build()


# ----------------------------------------------------------------------
# Equivalence properties
# ----------------------------------------------------------------------
_SCENARIOS = [
    ScenarioParams(family="chase", seed=3),
    ScenarioParams(family="gather", size=12, mem_pct=15, seed=3),
    ScenarioParams(family="stream", seed=3),
    ScenarioParams(family="stencil", seed=3),
    ScenarioParams(family="reduce", seed=3),
    ScenarioParams(family="alias", alias_pct=40, seed=3),
]

_MACHINES = {
    "baseline": BASELINE_CONFIG,
    # The stall-heavy corner: contended single bus, tiny modules, far
    # next level — long in-flight windows, bus queueing, NL port queues.
    "slowmem": parse_config_name("gen-c4-mb1x8-rb4x2-cm512b32a2-nl60p2"),
}


class TestEngineEquivalence:
    @pytest.mark.parametrize("params", _SCENARIOS, ids=lambda p: p.name)
    @pytest.mark.parametrize("machine", sorted(_MACHINES), ids=str)
    def test_identical_stats_on_scenarios(self, params, machine):
        compiled = _compile(build_scenario_ddg(params), _MACHINES[machine])
        reference = _run(compiled, "cycles")
        events = _run(compiled, "events")
        assert _canonical(events) == _canonical(reference)
        assert events.violations.total == reference.violations.total
        assert events.violations.stale_reads == reference.violations.stale_reads
        assert events.violations.future_reads == reference.violations.future_reads

    @pytest.mark.parametrize(
        "mode", [CoherenceMode.MDC, CoherenceMode.DDGT], ids=lambda m: m.value
    )
    def test_identical_under_coherence_solutions(self, mode):
        params = ScenarioParams(family="alias", alias_pct=40, seed=3)
        compiled = _compile(build_scenario_ddg(params), coherence=mode)
        reference = _run(compiled, "cycles")
        events = _run(compiled, "events")
        assert _canonical(events) == _canonical(reference)
        assert events.violations.total == reference.violations.total == 0

    def test_identical_with_attraction_buffers(self):
        params = ScenarioParams(family="gather", seed=3)
        compiled = _compile(
            build_scenario_ddg(params),
            BASELINE_CONFIG.with_attraction_buffers(),
        )
        reference = _run(compiled, "cycles")
        events = _run(compiled, "events")
        assert _canonical(events) == _canonical(reference)

    def test_fast_paths_actually_engage(self):
        """The equivalence above must cover the skipping machinery, not
        vacuously compare two per-cycle runs."""
        params = ScenarioParams(family="gather", size=12, mem_pct=15, seed=3)
        compiled = _compile(build_scenario_ddg(params), _MACHINES["slowmem"])
        events = _run(compiled, "events")
        assert events.stats.fast_forwarded_cycles > 0
        reference = _run(compiled, "cycles")
        assert reference.stats.fast_forwarded_cycles == 0

    def test_unknown_engine_rejected(self):
        compiled = _compile(single_load_loop())
        trace = trace_factory(8, seed=7)(compiled.ddg)
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            simulate(compiled, trace, iterations=8, engine="warp")


# ----------------------------------------------------------------------
# Watchdogs (regression: hung drain / hung stall must raise, not spin)
# ----------------------------------------------------------------------
class _NeverQuiescentMemory(MemorySystem):
    """A buggy memory system that claims in-flight work forever."""

    def quiescent(self) -> bool:
        return False


class _SwallowingMemory(MemorySystem):
    """A buggy memory system that drops loads: completion never comes."""

    def load(self, cluster, addr, width, iid, iteration, on_complete,
             cycle) -> None:
        pass


@pytest.fixture
def small_watchdog(monkeypatch):
    monkeypatch.setattr(executor_mod, "STALL_WATCHDOG", 500)
    return 500


@pytest.mark.parametrize("engine", ENGINES)
def test_hung_drain_raises_within_bound(engine, small_watchdog, monkeypatch):
    monkeypatch.setattr(executor_mod, "MemorySystem", _NeverQuiescentMemory)
    compiled = _compile(single_load_loop())
    trace = trace_factory(8, seed=7)(compiled.ddg)
    with pytest.raises(SimulationError, match="drain"):
        simulate(compiled, trace, iterations=8, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_lost_load_raises_stall_watchdog(engine, small_watchdog, monkeypatch):
    monkeypatch.setattr(executor_mod, "MemorySystem", _SwallowingMemory)
    compiled = _compile(single_load_loop())
    trace = trace_factory(8, seed=7)(compiled.ddg)
    with pytest.raises(
        SimulationError,
        match=f"machine stalled for {small_watchdog + 1} cycles",
    ):
        simulate(compiled, trace, iterations=8, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_long_healthy_drain_does_not_trip_watchdog(engine, small_watchdog):
    """The drain watchdog bounds progress-free windows, not total drain
    length: a store-heavy loop on a single slow bus builds a backlog
    whose (healthy) drain takes far longer than the watchdog."""
    b = DdgBuilder("store-flood")
    b.store(mem=MemRef("A", stride=4), name="st")
    ddg = b.build()
    # Pin the store away from 3/4 of its rotating homes and forbid the
    # locality unroll, so one remote store issues per cycle against a
    # single 8-cycle bus: the backlog grows ~7/8 per cycle.
    for v in list(ddg):
        ddg.pin_cluster(v.iid, 0)
    machine = parse_config_name("gen-c4-mb1x8-rb4x2-cm2048b32a2-nl10p4")
    compiled = _compile(ddg, machine, unroll_factor=1)
    iterations = 400
    trace = trace_factory(iterations, seed=7)(compiled.ddg)
    result = simulate(compiled, trace, iterations=iterations, engine=engine)
    # The backlog really outlived the watchdog: messages spent far more
    # aggregate cycles queued than the progress-free bound allows.
    assert result.stats.bus_queued_cycles > small_watchdog
    assert result.stats.stall_cycles == 0  # stores never stall the core


def test_watchdog_stall_accounting_matches_reference(
    small_watchdog, monkeypatch
):
    """The event engine charges the emulated watchdog window exactly as
    the per-cycle reference would have before raising."""
    monkeypatch.setattr(executor_mod, "MemorySystem", _SwallowingMemory)
    compiled = _compile(single_load_loop())
    messages = {}
    for engine in ENGINES:
        trace = trace_factory(8, seed=7)(compiled.ddg)
        with pytest.raises(SimulationError) as excinfo:
            simulate(compiled, trace, iterations=8, engine=engine)
        messages[engine] = str(excinfo.value)
    assert messages["events"] == messages["cycles"]


# ----------------------------------------------------------------------
# Completion-map pruning (regression: bulk jumps must not starve it)
# ----------------------------------------------------------------------
def test_prune_drops_stale_completed_entries():
    completions = {0: {it: it * 10 for it in range(100)}}
    completions[0][55] = None  # still in flight: must survive
    executor_mod._prune(completions, index=4096, ii=2, length=4)
    survivors = completions[0]
    assert None in survivors.values()
    horizon = (4096 - 4) // 2 - 8
    assert all(it >= horizon or done is None
               for it, done in survivors.items())


def test_prune_keeps_running_across_bulk_jumps(monkeypatch):
    """A kernel whose slots are mostly memory-free retires via the bulk
    fast path, jumping the kernel index over multiples of the prune
    interval; threshold-based scheduling must keep pruning anyway."""
    calls = []
    watermarks = []
    real_prune = executor_mod._prune

    def spy(completions, index, ii, length):
        calls.append(index)
        real_prune(completions, index, ii, length)
        watermarks.append(sum(len(m) for m in completions.values()))

    monkeypatch.setattr(executor_mod, "_prune", spy)
    monkeypatch.setattr(executor_mod, "_PRUNE_INTERVAL", 256)

    # One local-hit load plus ten independent filler ALUs, all pinned to
    # the load's home cluster: II grows to ~11 with a single memory slot,
    # so almost every slot is clean and long index runs retire in bulk.
    b = DdgBuilder("mostly-clean")
    b.load("x", mem=MemRef("A", stride=0), name="ld")
    b.ialu("y", "x", name="use")
    for k in range(10):
        b.ialu(f"f{k}", name=f"filler{k}")
    ddg = b.build()
    for v in list(ddg):
        ddg.pin_cluster(v.iid, 0)
    compiled = _compile(ddg)
    iterations = 2000
    trace = AddressTrace(compiled.ddg, num_iterations=iterations,
                         base_of={"A": 0})
    result = simulate(compiled, trace, iterations=iterations)

    total_indexes = (
        compiled.schedule.length + (iterations - 1) * compiled.schedule.ii
    )
    assert calls, "prune never ran"
    # Coverage: pruning kept pace with the index stream to the end.
    assert max(calls) > total_indexes - 2 * 256
    gaps = [b - a for a, b in zip(calls, calls[1:])]
    assert all(gap <= 2 * 256 for gap in gaps)
    # The bound itself: after each prune the map holds at most the live
    # window plus one interval of completions, never the whole history.
    assert max(watermarks) <= 2 * 256
    # Sanity: the run really used the bulk path.
    assert result.stats.fast_retired_indexes > 0
