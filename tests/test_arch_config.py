"""Machine-description tests (paper Table 2 and section 4.2 variants)."""

import pytest

from repro.arch import (
    BASELINE_CONFIG,
    NOBAL_MEM_CONFIG,
    NOBAL_REG_CONFIG,
    BusConfig,
    CacheConfig,
    FuKind,
    MachineConfig,
    named_config,
)
from repro.errors import ConfigError


class TestTable2Parameters:
    def test_baseline_matches_table2(self):
        cfg = BASELINE_CONFIG
        assert cfg.num_clusters == 4
        assert cfg.fu_per_cluster == {FuKind.INT: 1, FuKind.FP: 1, FuKind.MEM: 1}
        assert cfg.cache.module_bytes == 2 * 1024
        assert cfg.cache.block_bytes == 32
        assert cfg.cache.associativity == 2
        assert cfg.cache.hit_latency == 1
        assert cfg.memory_buses == BusConfig(4, 2)
        assert cfg.register_buses == BusConfig(4, 2)
        assert cfg.next_level.ports == 4
        assert cfg.next_level.latency == 10

    def test_total_cache_is_8kb(self):
        cfg = BASELINE_CONFIG
        assert cfg.num_clusters * cfg.cache.module_bytes == 8 * 1024

    def test_nobal_mem_buses(self):
        assert NOBAL_MEM_CONFIG.memory_buses == BusConfig(4, 2)
        assert NOBAL_MEM_CONFIG.register_buses == BusConfig(2, 4)

    def test_nobal_reg_buses(self):
        assert NOBAL_REG_CONFIG.memory_buses == BusConfig(2, 4)
        assert NOBAL_REG_CONFIG.register_buses == BusConfig(4, 2)

    def test_named_config_lookup(self):
        assert named_config("baseline") is BASELINE_CONFIG
        assert named_config("nobal+mem") is NOBAL_MEM_CONFIG
        assert named_config("nobal+reg") is NOBAL_REG_CONFIG

    def test_named_config_unknown(self):
        with pytest.raises(ConfigError, match="unknown configuration"):
            named_config("bogus")


class TestLatencyLadder:
    def test_ladder_is_increasing(self):
        lat = BASELINE_CONFIG.memory_latencies()
        assert lat.local_hit < lat.remote_hit < lat.local_miss < lat.remote_miss
        assert lat.ladder() == (1, 5, 11, 15)

    def test_ladder_tracks_bus_latency(self):
        lat = NOBAL_REG_CONFIG.memory_latencies()
        # 4-cycle memory buses: remote hit = 4 + 1 + 4.
        assert lat.remote_hit == 9
        assert lat.remote_miss == 19

    def test_op_latencies(self):
        cfg = BASELINE_CONFIG
        assert cfg.op_latency("ialu") == 1
        assert cfg.op_latency("fmul") == 4
        with pytest.raises(ConfigError):
            cfg.op_latency("bogus")


class TestAddressMapping:
    def test_word_interleaving(self):
        cfg = BASELINE_CONFIG  # 4-byte interleave
        assert [cfg.home_cluster(a) for a in (0, 4, 8, 12, 16)] == [0, 1, 2, 3, 0]

    def test_halfword_interleaving(self):
        cfg = BASELINE_CONFIG.with_interleave(2)
        assert [cfg.home_cluster(a) for a in (0, 2, 4, 6, 8)] == [0, 1, 2, 3, 0]

    def test_with_interleave_keeps_other_fields(self):
        cfg = BASELINE_CONFIG.with_interleave(2)
        assert cfg.cache == BASELINE_CONFIG.cache
        assert cfg.num_clusters == BASELINE_CONFIG.num_clusters

    def test_subblock_size(self):
        # 32-byte block over 4 clusters: 8 bytes per cluster.
        assert BASELINE_CONFIG.subblock_bytes == 8


class TestValidation:
    def test_block_must_cover_all_clusters(self):
        with pytest.raises(ConfigError):
            MachineConfig(interleave_bytes=12)

    def test_bus_count_positive(self):
        with pytest.raises(ConfigError):
            BusConfig(0, 2)

    def test_bus_latency_positive(self):
        with pytest.raises(ConfigError):
            BusConfig(4, 0)

    def test_cache_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(module_bytes=1000)  # not a multiple of block*ways

    def test_cache_num_sets(self):
        assert CacheConfig().num_sets == 2048 // (32 * 2)

    def test_attraction_buffer_copy(self):
        cfg = BASELINE_CONFIG.with_attraction_buffers()
        assert cfg.attraction_buffer.entries == 16
        assert cfg.attraction_buffer.associativity == 2
        assert cfg.attraction_buffer.num_sets == 8
        assert BASELINE_CONFIG.attraction_buffer is None

    def test_describe_mentions_key_facts(self):
        text = BASELINE_CONFIG.describe()
        assert "4" in text and "2KB" in text and "32B" in text
