"""Shared fixtures: the paper's Figure 3 example graph and small machines."""

from __future__ import annotations

import pytest

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG, MachineConfig
from repro.ir import DdgBuilder, DepKind


def build_figure3():
    """The example DDG of the paper's Figure 3.

    Five nodes — two loads (n1, n2), two stores (n3, n4), one add (n5) —
    with the register and memory dependences drawn in the figure:

    * RF n1->n4 (n4 stores the value n1 loads), RF n2->n5;
    * MA (d0): n1->n3, n1->n4, n2->n3, n2->n4;
    * MF (d1): n3->n1, n3->n2, n4->n2;
    * MO: n3->n4 (d0), n4->n3 (d1), and the d1 self loops on both stores.

    Returns (ddg, nodes) where nodes maps "n1".."n5" to Instructions.
    """
    b = DdgBuilder("figure3")
    mem = dict(space="A", stride=4, width=4, ambiguous=True)
    n1 = b.load("r27", mem=MemRef(offset=0, **mem), name="n1")
    n2 = b.load("r2", mem=MemRef(offset=16, **mem), name="n2")
    n3 = b.store(mem=MemRef(offset=32, **mem), name="n3")
    n4 = b.store("r27", mem=MemRef(offset=48, **mem), name="n4")
    n5 = b.ialu("r5", "r2", name="n5")
    # The builder derived RF n1->n4 (n4 sources r27) and RF n2->n5
    # automatically; n3 has no register inputs in the figure.
    b.mem_dep(n1, n3, DepKind.MA, 0)
    b.mem_dep(n1, n4, DepKind.MA, 0)
    b.mem_dep(n2, n3, DepKind.MA, 0)
    b.mem_dep(n2, n4, DepKind.MA, 0)
    b.mem_dep(n3, n1, DepKind.MF, 1)
    b.mem_dep(n3, n2, DepKind.MF, 1)
    b.mem_dep(n4, n2, DepKind.MF, 1)
    b.mem_dep(n3, n4, DepKind.MO, 0)
    b.mem_dep(n4, n3, DepKind.MO, 1)
    b.mem_dep(n3, n3, DepKind.MO, 1)
    b.mem_dep(n4, n4, DepKind.MO, 1)
    ddg = b.build()
    return ddg, {"n1": n1, "n2": n2, "n3": n3, "n4": n4, "n5": n5}


@pytest.fixture
def figure3():
    return build_figure3()


@pytest.fixture
def machine() -> MachineConfig:
    return BASELINE_CONFIG


def build_simple_stream():
    """A tiny chain-free loop: d[i] = a[i] + b[i]."""
    b = DdgBuilder("stream")
    b.ialu("i", b.carried("i", 1), name="agen")
    b.load("a", "i", mem=MemRef("A", stride=4), name="lda")
    b.load("x", "i", mem=MemRef("B", stride=4), name="ldb")
    b.ialu("s", "a", "x", name="add")
    b.store("s", "i", mem=MemRef("C", stride=4), name="st")
    return b.build()


@pytest.fixture
def stream_loop():
    return build_simple_stream()
