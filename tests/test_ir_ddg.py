"""Structural tests for the DDG container and instructions."""

import pytest

from repro.alias import MemRef
from repro.errors import GraphError
from repro.ir import Ddg, DdgBuilder, DepKind, Opcode
from repro.ir.instructions import Instruction


class TestInstruction:
    def test_memory_requires_memref(self):
        with pytest.raises(GraphError):
            Instruction(iid=0, opcode=Opcode.LOAD, seq=0)

    def test_non_memory_rejects_memref(self):
        with pytest.raises(GraphError):
            Instruction(iid=0, opcode=Opcode.IALU, seq=0, mem=MemRef("A"))

    def test_store_defines_no_register(self):
        with pytest.raises(GraphError):
            Instruction(
                iid=0, opcode=Opcode.STORE, seq=0, dest="r1", mem=MemRef("A")
            )

    def test_properties(self):
        load = Instruction(iid=1, opcode=Opcode.LOAD, seq=0, dest="r",
                           mem=MemRef("A"))
        assert load.is_load and load.is_memory and not load.is_store
        copy = Instruction(iid=2, opcode=Opcode.COPY, seq=0, dest="c")
        assert copy.is_copy and copy.fu_kind is None

    def test_pinned_to(self):
        op = Instruction(iid=0, opcode=Opcode.IALU, seq=0, dest="r")
        assert op.pinned_to(2).required_cluster == 2
        assert op.required_cluster is None  # original untouched


class TestDdgNodes:
    def test_iids_are_unique_and_dense(self):
        ddg = Ddg()
        ids = [ddg.add_instruction(Opcode.IALU, dest=f"r{k}").iid
               for k in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_insert_rejects_duplicate_iid(self):
        ddg = Ddg()
        op = ddg.add_instruction(Opcode.IALU, dest="r")
        with pytest.raises(GraphError):
            ddg.insert(op)

    def test_unknown_node(self):
        ddg = Ddg()
        with pytest.raises(GraphError):
            ddg.node(42)

    def test_program_order_uses_seq(self):
        ddg = Ddg()
        late = ddg.add_instruction(Opcode.IALU, dest="a", seq=5)
        early = ddg.add_instruction(Opcode.IALU, dest="b", seq=1)
        assert ddg.in_program_order() == [early, late]

    def test_memory_filters(self, figure3):
        ddg, nodes = figure3
        assert {v.label for v in ddg.loads()} == {"n1", "n2"}
        assert {v.label for v in ddg.stores()} == {"n3", "n4"}
        assert len(ddg.memory_instructions()) == 4


class TestDdgEdges:
    def test_duplicate_edges_are_skipped(self):
        ddg = Ddg()
        a = ddg.add_instruction(Opcode.IALU, dest="a")
        b = ddg.add_instruction(Opcode.IALU, dest="b", srcs=("a",))
        assert ddg.add_edge(a.iid, b.iid, DepKind.RF) is not None
        assert ddg.add_edge(a.iid, b.iid, DepKind.RF) is None
        assert len(ddg.edges()) == 1

    def test_edge_endpoints_must_exist(self):
        ddg = Ddg()
        a = ddg.add_instruction(Opcode.IALU, dest="a")
        with pytest.raises(GraphError):
            ddg.add_edge(a.iid, 99, DepKind.RF)

    def test_remove_edges_by_predicate(self, figure3):
        ddg, _ = figure3
        removed = ddg.remove_edges(lambda e: e.kind is DepKind.MA)
        assert len(removed) == 4
        assert all(e.kind is not DepKind.MA for e in ddg.edges())

    def test_consumers_are_rf_targets(self, figure3):
        ddg, nodes = figure3
        assert [c.label for c in ddg.consumers(nodes["n1"].iid)] == ["n4"]
        assert [c.label for c in ddg.consumers(nodes["n2"].iid)] == ["n5"]

    def test_preds_and_succs_are_copies(self, figure3):
        ddg, nodes = figure3
        succs = ddg.succs(nodes["n3"].iid)
        succs.clear()
        assert ddg.succs(nodes["n3"].iid)  # unaffected


class TestClone:
    def test_clone_is_independent(self, figure3):
        ddg, nodes = figure3
        copy = ddg.clone()
        copy.add_instruction(Opcode.IALU, dest="x")
        copy.remove_edges(lambda e: True)
        assert len(copy) == len(ddg) + 1
        assert len(ddg.edges()) > 0

    def test_clone_continues_iid_sequence(self, figure3):
        ddg, _ = figure3
        copy = ddg.clone()
        fresh = copy.add_instruction(Opcode.IALU, dest="x")
        assert fresh.iid not in [v.iid for v in ddg]


class TestBuilder:
    def test_def_use_creates_rf_edges(self, stream_loop):
        rf = [e for e in stream_loop.edges() if e.kind is DepKind.RF]
        # agen feeds 3 memory ops + itself (carried); add feeds store;
        # two loads feed add.
        assert len(rf) == 7

    def test_carried_use_distance(self, stream_loop):
        agen = next(v for v in stream_loop if v.name == "agen")
        self_edges = [e for e in stream_loop.succs(agen.iid)
                      if e.dst == agen.iid]
        assert self_edges and self_edges[0].distance == 1

    def test_undefined_register_raises(self):
        b = DdgBuilder()
        with pytest.raises(GraphError, match="undefined register"):
            b.ialu("x", "nope")

    def test_carried_never_defined_raises(self):
        b = DdgBuilder()
        b.ialu("x", b.carried("ghost", 1))
        with pytest.raises(GraphError, match="never-defined"):
            b.build()

    def test_mem_dep_rejects_rf(self, figure3):
        _, nodes = figure3
        b = DdgBuilder()
        with pytest.raises(GraphError):
            b.mem_dep(nodes["n1"], nodes["n3"], DepKind.RF)

    def test_describe_lists_nodes(self, figure3):
        ddg, _ = figure3
        text = ddg.describe()
        for label in ("n1", "n2", "n3", "n4", "n5"):
            assert label in text
